//===- tests/coverage_test.cpp - Systematic coverage sweeps -------------------===//
//
// Breadth-first coverage of the surface area the focused suites do not
// reach: lexer/parser diagnostics, evaluator operator matrices, comparison
// semantics per type, encoder counting, and synthesized-program structure.
//
//===----------------------------------------------------------------------===//

#include "ast/Analysis.h"
#include "benchsuite/Benchmark.h"
#include "parse/Parser.h"
#include "synth/Synthesizer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

//===----------------------------------------------------------------------===//
// Lexer / parser diagnostics
//===----------------------------------------------------------------------===//

namespace {

struct BadInput {
  const char *Name;
  const char *Text;
  const char *MsgFragment; ///< Expected substring of the diagnostic.
};

class ParserDiagnostics : public ::testing::TestWithParam<BadInput> {};

} // namespace

TEST_P(ParserDiagnostics, ReportsHelpfulMessage) {
  std::variant<ParseOutput, ParseError> R = parseUnit(GetParam().Text);
  ASSERT_TRUE(std::holds_alternative<ParseError>(R)) << GetParam().Text;
  const ParseError &E = std::get<ParseError>(R);
  EXPECT_NE(E.Msg.find(GetParam().MsgFragment), std::string::npos)
      << "got: " << E.Msg;
  EXPECT_GE(E.Line, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParserDiagnostics,
    ::testing::Values(
        BadInput{"TopLevel", "table T(a: int)", "expected 'schema'"},
        BadInput{"SchemaName", "schema { }", "identifier"},
        BadInput{"MissingBrace", "schema S table T(a: int)", "'{'"},
        BadInput{"BadType", "schema S { table T(a: float) }", "unknown type"},
        BadInput{"MissingColon", "schema S { table T(a int) }", "':'"},
        BadInput{"EmptySchemaBody", "schema S { table }", "identifier"},
        BadInput{"FuncKeyword",
                 "schema S { table T(a: int) }\nprogram P on S { select }",
                 "'}'"},
        BadInput{"MissingSemi",
                 "schema S { table T(a: int) }\nprogram P on S {\n"
                 "  query q(x: int) { select a from T where a = x }\n}",
                 "';'"},
        BadInput{"BadOperator",
                 "schema S { table T(a: int) }\nprogram P on S {\n"
                 "  query q(x: int) { select a from T where a ~ x; }\n}",
                 "unexpected character"},
        BadInput{"InsertMissingValues",
                 "schema S { table T(a: int) }\nprogram P on S {\n"
                 "  update u(x: int) { insert into T (a: x); }\n}",
                 "'values'"},
        BadInput{"UpdateMissingSet",
                 "schema S { table T(a: int) }\nprogram P on S {\n"
                 "  update u(x: int) { update T a = x; }\n}",
                 "'set'"},
        BadInput{"DeleteMissingFrom",
                 "schema S { table T(a: int) }\nprogram P on S {\n"
                 "  update u(x: int) { delete T where a = x; }\n}",
                 "'from'"}),
    [](const ::testing::TestParamInfo<BadInput> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Comparison operator matrix per value type
//===----------------------------------------------------------------------===//

namespace {

struct CmpCase {
  const char *Name;
  Value L, R;
  // Expected results for Eq, Ne, Lt, Le, Gt, Ge.
  bool Expect[6];
};

class CmpMatrix : public ::testing::TestWithParam<CmpCase> {};

} // namespace

TEST_P(CmpMatrix, AllSixOperators) {
  const CmpCase &C = GetParam();
  const CmpOp Ops[6] = {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt,
                        CmpOp::Le, CmpOp::Gt, CmpOp::Ge};
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(evalCmpOp(Ops[I], C.L, C.R), C.Expect[I])
        << C.Name << " op " << cmpOpName(Ops[I]);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CmpMatrix,
    ::testing::Values(
        CmpCase{"IntLess", Value::makeInt(1), Value::makeInt(2),
                {false, true, true, true, false, false}},
        CmpCase{"IntEqual", Value::makeInt(5), Value::makeInt(5),
                {true, false, false, true, false, true}},
        CmpCase{"IntNegative", Value::makeInt(-1), Value::makeInt(0),
                {false, true, true, true, false, false}},
        CmpCase{"StringLex", Value::makeString("abc"), Value::makeString("abd"),
                {false, true, true, true, false, false}},
        CmpCase{"BinaryEqual", Value::makeBinary("b0"), Value::makeBinary("b0"),
                {true, false, false, true, false, true}},
        CmpCase{"BoolOrder", Value::makeBool(false), Value::makeBool(true),
                {false, true, true, true, false, false}},
        CmpCase{"UidEqual", Value::makeUid(3), Value::makeUid(3),
                {true, false, false, true, false, true}},
        CmpCase{"UidVsInt", Value::makeUid(3), Value::makeInt(3),
                {false, true, false, false, false, false}},
        CmpCase{"IntVsString", Value::makeInt(0), Value::makeString("0"),
                {false, true, false, false, false, false}}),
    [](const ::testing::TestParamInfo<CmpCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Evaluator: statement matrices
//===----------------------------------------------------------------------===//

TEST(EvalCoverage, PredicateConnectives) {
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a: int, b: int) }
program P on S {
  update add(a: int, b: int) { insert into T values (a: a, b: b); }
  query andQ(x: int, y: int) { select a from T where a = x and b = y; }
  query orQ(x: int, y: int) { select a from T where a = x or b = y; }
  query notQ(x: int) { select a from T where not (a = x); }
  query nested(x: int) { select a from T where not (a = x or not (b = x)); }
  query range(lo: int, hi: int) {
    select a from T where a >= lo and a <= hi;
  }
}
)");
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  auto Run = [&](const char *Q, std::vector<Value> Args) {
    InvocationSeq Seq = {{"add", {Value::makeInt(1), Value::makeInt(1)}},
                         {"add", {Value::makeInt(1), Value::makeInt(2)}},
                         {"add", {Value::makeInt(2), Value::makeInt(2)}},
                         {Q, std::move(Args)}};
    std::optional<ResultTable> R = runSequence(P, S, Seq);
    EXPECT_TRUE(R.has_value());
    return R ? R->getNumRows() : 0;
  };
  EXPECT_EQ(Run("andQ", {Value::makeInt(1), Value::makeInt(2)}), 1u);
  EXPECT_EQ(Run("orQ", {Value::makeInt(1), Value::makeInt(2)}), 3u);
  EXPECT_EQ(Run("notQ", {Value::makeInt(1)}), 1u);
  // not (a = x or not (b = x)) == a != x and b == x; for x=2: rows with
  // a!=2, b=2: (1,2) only.
  EXPECT_EQ(Run("nested", {Value::makeInt(2)}), 1u);
  EXPECT_EQ(Run("range", {Value::makeInt(1), Value::makeInt(2)}), 3u);
  EXPECT_EQ(Run("range", {Value::makeInt(2), Value::makeInt(1)}), 0u);
}

TEST(EvalCoverage, DeleteWithoutPredicateEmptiesTable) {
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a: int) }
program P on S {
  update add(a: int) { insert into T values (a: a); }
  update clear() { delete from T; }
  query all(x: int) { select a from T where a != x; }
}
)");
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  std::optional<ResultTable> R = runSequence(
      P, S,
      {{"add", {Value::makeInt(1)}},
       {"add", {Value::makeInt(2)}},
       {"clear", {}},
       {"all", {Value::makeInt(99)}}});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->getNumRows(), 0u);
}

TEST(EvalCoverage, MultiStatementUpdateFunctionRunsInOrder) {
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a: int) }
program P on S {
  update addTwiceRemoveOnce(a: int, b: int) {
    insert into T values (a: a);
    insert into T values (a: b);
    delete from T where a = a;
  }
  query count(x: int) { select a from T where a != x; }
}
)");
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  std::optional<ResultTable> R = runSequence(
      P, S,
      {{"addTwiceRemoveOnce", {Value::makeInt(1), Value::makeInt(2)}},
       {"count", {Value::makeInt(99)}}});
  ASSERT_TRUE(R.has_value());
  // a=1 inserted then deleted (pred a = param a); b=2 remains.
  ASSERT_EQ(R->getNumRows(), 1u);
  EXPECT_EQ(R->Rows[0][0].getInt(), 2);
}

TEST(EvalCoverage, BoolColumnsRoundTrip) {
  ParseOutput Out = parseOrDie(R"(
schema S { table Flags(fid: int, enabled: bool) }
program P on S {
  update setFlag(f: int, e: bool) {
    insert into Flags values (fid: f, enabled: e);
  }
  query isEnabled(f: int) { select enabled from Flags where fid = f; }
  query enabledOnes(e: bool) { select fid from Flags where enabled = e; }
}
)");
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  std::optional<ResultTable> R = runSequence(
      P, S,
      {{"setFlag", {Value::makeInt(1), Value::makeBool(true)}},
       {"setFlag", {Value::makeInt(2), Value::makeBool(false)}},
       {"enabledOnes", {Value::makeBool(true)}}});
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->getNumRows(), 1u);
  EXPECT_EQ(R->Rows[0][0].getInt(), 1);
}

//===----------------------------------------------------------------------===//
// Encoder counting semantics
//===----------------------------------------------------------------------===//

TEST(EncoderCoverage, BlockedCountIsProductOfOtherDomains) {
  Sketch Sk;
  unsigned Sizes[3] = {2, 3, 5};
  for (unsigned S = 0; S < 3; ++S) {
    Hole H;
    H.TheKind = Hole::Kind::Attr;
    H.Func = "f";
    for (unsigned A = 0; A < Sizes[S]; ++A)
      H.Attrs.push_back({"T", "a" + std::to_string(A)});
    Sk.addHole(std::move(H));
  }
  SketchEncoder Enc(Sk);
  EXPECT_DOUBLE_EQ(Enc.blockedCount({0}), 15.0);      // 3 * 5.
  EXPECT_DOUBLE_EQ(Enc.blockedCount({1}), 10.0);      // 2 * 5.
  EXPECT_DOUBLE_EQ(Enc.blockedCount({0, 1}), 5.0);
  EXPECT_DOUBLE_EQ(Enc.blockedCount({0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Sk.spaceSize(), 30.0);
}

TEST(EncoderCoverage, UnbiasedEncoderStillEnumeratesFullSpace) {
  Sketch Sk;
  for (int H = 0; H < 2; ++H) {
    Hole X;
    X.TheKind = Hole::Kind::Attr;
    X.Func = "f";
    X.Attrs = {{"T", "a"}, {"T", "b"}, {"T", "c"}};
    Sk.addHole(std::move(X));
  }
  SketchEncoder Enc(Sk, /*BiasFirstAlternatives=*/false);
  int Count = 0;
  while (std::optional<std::vector<unsigned>> A = Enc.nextAssignment()) {
    Enc.blockAll(*A);
    ++Count;
    ASSERT_LE(Count, 9);
  }
  EXPECT_EQ(Count, 9);
}

//===----------------------------------------------------------------------===//
// Synthesized-program structure (golden checks)
//===----------------------------------------------------------------------===//

TEST(GoldenStructure, Oracle1MergedInsertIsSingleTable) {
  Benchmark B = loadBenchmark("Oracle-1");
  SynthResult R = synthesize(B.Source, B.Prog, B.Target);
  ASSERT_TRUE(R.succeeded());
  const Function &Add = R.Prog->getFunction("addPerson");
  ASSERT_EQ(Add.getBody().size(), 1u);
  const auto &Ins = static_cast<const InsertStmt &>(*Add.getBody()[0]);
  EXPECT_TRUE(Ins.getChain().isSingleTable());
  EXPECT_EQ(Ins.getChain().getTables().front(), "Person");
  // The dropped remarkContent value is gone; the six mapped columns remain.
  EXPECT_EQ(Ins.getValues().size(), 6u);
}

TEST(GoldenStructure, Ambler1SplitInsertWritesBothTables) {
  Benchmark B = loadBenchmark("Ambler-1");
  SynthResult R = synthesize(B.Source, B.Prog, B.Target);
  ASSERT_TRUE(R.succeeded());
  const Function &Add = R.Prog->getFunction("addCustomer");
  // Either one chain insert over Customer ⋈ Address or two inserts.
  std::set<std::string> Touched;
  for (const StmtPtr &St : Add.getBody()) {
    ASSERT_EQ(St->getKind(), Stmt::Kind::Insert);
    for (const std::string &T :
         static_cast<const InsertStmt &>(*St).getChain().getTables())
      Touched.insert(T);
  }
  EXPECT_TRUE(Touched.count("Customer"));
  EXPECT_TRUE(Touched.count("Address"));
}

TEST(GoldenStructure, Ambler4RenameRewritesAttribute) {
  Benchmark B = loadBenchmark("Ambler-4");
  SynthResult R = synthesize(B.Source, B.Prog, B.Target);
  ASSERT_TRUE(R.succeeded());
  std::string Str = R.Prog->str();
  EXPECT_NE(Str.find("taskTitleText"), std::string::npos);
  EXPECT_EQ(Str.find("taskTitle "), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Synthesizer failure modes
//===----------------------------------------------------------------------===//

TEST(SynthFailure, DisconnectedQueryAttrsAreUnsatisfiable) {
  // The query needs name and phone in one result, but the target stores
  // them in unlinkable tables: no VC admits a sketch.
  ParseOutput Out = parseOrDie(R"(
schema Old { table P(name: string, phone: string) }
schema New { table NameT(name: string) table PhoneT(phone: string) }
program App on Old {
  update add(n: string, ph: string) {
    insert into P values (name: n, phone: ph);
  }
  query get(n: string) { select name, phone from P where name = n; }
}
)");
  SynthOptions Opts;
  Opts.MaxVcs = 50;
  SynthResult R = synthesize(*Out.findSchema("Old"),
                             Out.findProgram("App")->Prog,
                             *Out.findSchema("New"), Opts);
  EXPECT_FALSE(R.succeeded());
}

TEST(SynthFailure, MaxVcsBoundsTheSearch) {
  ParseOutput Out = parseOrDie(R"(
schema Old { table T(a: int, b: int) }
schema New { table T(x: int, y: int) }
program App on Old {
  update add(a: int, b: int) { insert into T values (a: a, b: b); }
  query getA(v: int) { select a from T where b = v; }
}
)");
  // Dissimilar names: the right VC needs searching; a cap of 1 may fail but
  // must terminate quickly and report the VC count honestly.
  SynthOptions Opts;
  Opts.MaxVcs = 1;
  SynthResult R = synthesize(*Out.findSchema("Old"),
                             Out.findProgram("App")->Prog,
                             *Out.findSchema("New"), Opts);
  EXPECT_LE(R.Stats.NumVcs, 1u);
}
