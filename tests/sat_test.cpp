//===- tests/sat_test.cpp - CDCL SAT and MaxSAT solver tests -----------------===//

#include "sat/MaxSat.h"
#include "sat/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace migrator;
using namespace migrator::sat;

namespace {

/// Reference brute-force SAT check.
bool bruteForceSat(int NumVars, const std::vector<std::vector<Lit>> &Clauses) {
  assert(NumVars <= 20);
  for (uint32_t M = 0; M < (1u << NumVars); ++M) {
    bool AllSat = true;
    for (const std::vector<Lit> &C : Clauses) {
      bool Sat = false;
      for (const Lit &L : C) {
        bool V = (M >> L.var()) & 1;
        if (V != L.negated()) {
          Sat = true;
          break;
        }
      }
      if (!Sat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

/// Reference brute-force MaxSAT optimum; returns nullopt when hard clauses
/// are unsatisfiable.
std::optional<uint64_t>
bruteForceMaxSat(int NumVars, const std::vector<std::vector<Lit>> &Hard,
                 const std::vector<SoftClause> &Soft) {
  assert(NumVars <= 20);
  std::optional<uint64_t> Best;
  for (uint32_t M = 0; M < (1u << NumVars); ++M) {
    auto SatisfiedBy = [M](const std::vector<Lit> &C) {
      for (const Lit &L : C)
        if ((((M >> L.var()) & 1) != 0) != L.negated())
          return true;
      return false;
    };
    bool HardOk = true;
    for (const std::vector<Lit> &C : Hard)
      if (!SatisfiedBy(C)) {
        HardOk = false;
        break;
      }
    if (!HardOk)
      continue;
    uint64_t W = 0;
    for (const SoftClause &C : Soft)
      if (SatisfiedBy(C.Lits))
        W += C.Weight;
    if (!Best || W > *Best)
      Best = W;
  }
  return Best;
}

} // namespace

TEST(SatSolver, TrivialCases) {
  Solver S;
  EXPECT_EQ(S.solve(), Solver::Result::Sat); // Empty formula.

  Var A = S.newVar();
  EXPECT_TRUE(S.addClause({posLit(A)}));
  EXPECT_EQ(S.solve(), Solver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));

  EXPECT_FALSE(S.addClause({negLit(A)})); // Contradicts the unit.
  EXPECT_EQ(S.solve(), Solver::Result::Unsat);
}

TEST(SatSolver, SimpleImplicationChain) {
  Solver S;
  std::vector<Var> V;
  for (int I = 0; I < 10; ++I)
    V.push_back(S.newVar());
  for (int I = 0; I + 1 < 10; ++I)
    EXPECT_TRUE(S.addClause({negLit(V[I]), posLit(V[I + 1])})); // Vi -> Vi+1.
  EXPECT_TRUE(S.addClause({posLit(V[0])}));
  EXPECT_EQ(S.solve(), Solver::Result::Sat);
  for (int I = 0; I < 10; ++I)
    EXPECT_TRUE(S.modelValue(V[I]));
}

TEST(SatSolver, TautologyAndDuplicateLiterals) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  EXPECT_TRUE(S.addClause({posLit(A), negLit(A)}));      // Tautology dropped.
  EXPECT_TRUE(S.addClause({posLit(B), posLit(B)}));      // Duplicate collapsed.
  EXPECT_EQ(S.solve(), Solver::Result::Sat);
  EXPECT_TRUE(S.modelValue(B));
}

TEST(SatSolver, PigeonholeThreeIntoTwoIsUnsat) {
  // 3 pigeons, 2 holes: every pigeon somewhere, no hole shared.
  Solver S;
  Var X[3][2];
  for (auto &Row : X)
    for (Var &V : Row)
      V = S.newVar();
  for (int P = 0; P < 3; ++P)
    EXPECT_TRUE(S.addClause({posLit(X[P][0]), posLit(X[P][1])}));
  for (int H = 0; H < 2; ++H)
    for (int P = 0; P < 3; ++P)
      for (int Q = P + 1; Q < 3; ++Q)
        EXPECT_TRUE(S.addClause({negLit(X[P][H]), negLit(X[Q][H])}));
  EXPECT_EQ(S.solve(), Solver::Result::Unsat);
}

TEST(SatSolver, ExactlyOneSemantics) {
  Solver S;
  std::vector<Var> Vs;
  for (int I = 0; I < 5; ++I)
    Vs.push_back(S.newVar());
  EXPECT_TRUE(S.addExactlyOne(Vs));
  EXPECT_EQ(S.solve(), Solver::Result::Sat);
  int TrueCount = 0;
  for (Var V : Vs)
    TrueCount += S.modelValue(V);
  EXPECT_EQ(TrueCount, 1);

  // Forcing two of them true is unsatisfiable.
  Solver S2;
  std::vector<Var> Vs2;
  for (int I = 0; I < 3; ++I)
    Vs2.push_back(S2.newVar());
  EXPECT_TRUE(S2.addExactlyOne(Vs2));
  EXPECT_TRUE(S2.addClause({posLit(Vs2[0])}));
  bool Ok = S2.addClause({posLit(Vs2[1])});
  EXPECT_TRUE(!Ok || S2.solve() == Solver::Result::Unsat);
}

TEST(SatSolver, ModelEnumerationByBlocking) {
  // Exactly-one over 4 vars has exactly 4 models.
  Solver S;
  std::vector<Var> Vs;
  for (int I = 0; I < 4; ++I)
    Vs.push_back(S.newVar());
  EXPECT_TRUE(S.addExactlyOne(Vs));
  int Models = 0;
  while (S.solve() == Solver::Result::Sat) {
    ++Models;
    ASSERT_LE(Models, 4);
    std::vector<Lit> Block;
    for (Var V : Vs)
      Block.push_back(S.modelValue(V) ? negLit(V) : posLit(V));
    if (!S.addClause(Block))
      break;
  }
  EXPECT_EQ(Models, 4);
}

TEST(SatSolver, IncrementalClausesAfterSolve) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  EXPECT_TRUE(S.addClause({posLit(A), posLit(B)}));
  EXPECT_EQ(S.solve(), Solver::Result::Sat);
  EXPECT_TRUE(S.addClause({negLit(A)}));
  EXPECT_EQ(S.solve(), Solver::Result::Sat);
  EXPECT_TRUE(S.modelValue(B));
  // B is forced at the root, so adding ¬B latches UNSAT immediately.
  EXPECT_FALSE(S.addClause({negLit(B)}));
  EXPECT_EQ(S.solve(), Solver::Result::Unsat);
}

namespace {

struct RandomCnfCase {
  int Vars;
  int Clauses;
  uint64_t Seed;
};

class RandomCnf : public ::testing::TestWithParam<RandomCnfCase> {};

} // namespace

TEST_P(RandomCnf, AgreesWithBruteForce) {
  RandomCnfCase C = GetParam();
  Rng R(C.Seed);
  for (int Iter = 0; Iter < 30; ++Iter) {
    std::vector<std::vector<Lit>> Clauses;
    for (int I = 0; I < C.Clauses; ++I) {
      int Len = R.nextInt(1, 3);
      std::vector<Lit> Cl;
      for (int K = 0; K < Len; ++K)
        Cl.push_back(Lit(R.nextInt(0, C.Vars - 1), R.chance(1, 2)));
      Clauses.push_back(std::move(Cl));
    }
    Solver S;
    for (int V = 0; V < C.Vars; ++V)
      S.newVar();
    bool TriviallyUnsat = false;
    for (const std::vector<Lit> &Cl : Clauses)
      if (!S.addClause(Cl))
        TriviallyUnsat = true;
    bool Expected = bruteForceSat(C.Vars, Clauses);
    bool Got = !TriviallyUnsat && S.solve() == Solver::Result::Sat;
    ASSERT_EQ(Got, Expected) << "seed " << C.Seed << " iter " << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SweepSizes, RandomCnf,
    ::testing::Values(RandomCnfCase{4, 8, 1}, RandomCnfCase{6, 14, 2},
                      RandomCnfCase{8, 24, 3}, RandomCnfCase{10, 35, 4},
                      RandomCnfCase{12, 50, 5}, RandomCnfCase{14, 60, 6}));

//===----------------------------------------------------------------------===//
// MaxSAT
//===----------------------------------------------------------------------===//

TEST(MaxSatSolver, NoSoftClausesActsAsSat) {
  MaxSatSolver M;
  int A = M.addVars(2);
  M.addHard({posLit(A), posLit(A + 1)});
  std::optional<MaxSatResult> R = M.solve();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Weight, 0u);
  EXPECT_TRUE(R->Model[A] || R->Model[A + 1]);
}

TEST(MaxSatSolver, UnsatHardClausesReturnNullopt) {
  MaxSatSolver M;
  int A = M.addVars(1);
  M.addHard({posLit(A)});
  M.addHard({negLit(A)});
  EXPECT_FALSE(M.solve().has_value());
}

TEST(MaxSatSolver, PrefersHigherWeight) {
  MaxSatSolver M;
  int A = M.addVars(2);
  // Conflicting softs: weight decides.
  M.addHard({posLit(A), posLit(A + 1)});
  M.addHard({negLit(A), negLit(A + 1)});
  M.addSoft({posLit(A)}, 3);
  M.addSoft({posLit(A + 1)}, 5);
  std::optional<MaxSatResult> R = M.solve();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Weight, 5u);
  EXPECT_FALSE(R->Model[A]);
  EXPECT_TRUE(R->Model[A + 1]);
}

TEST(MaxSatSolver, BlockingEnumeratesDecreasingWeights) {
  MaxSatSolver M;
  int A = M.addVars(2);
  M.addSoft({posLit(A)}, 4);
  M.addSoft({posLit(A + 1)}, 2);
  uint64_t Prev = ~0ull;
  for (int I = 0; I < 4; ++I) {
    std::optional<MaxSatResult> R = M.solve();
    ASSERT_TRUE(R.has_value());
    EXPECT_LE(R->Weight, Prev);
    Prev = R->Weight;
    std::vector<Lit> Block;
    for (int V = 0; V < M.getNumVars(); ++V)
      Block.push_back(R->Model[V] ? negLit(V) : posLit(V));
    M.addHard(std::move(Block));
  }
  EXPECT_FALSE(M.solve().has_value()); // All four assignments used.
}

//===----------------------------------------------------------------------===//
// Search statistics (the accessors the observability layer reports)
//===----------------------------------------------------------------------===//

TEST(SatSolverStats, FreshSolverHasZeroedCounters) {
  Solver S;
  EXPECT_EQ(S.getNumConflicts(), 0u);
  EXPECT_EQ(S.getNumDecisions(), 0u);
  EXPECT_EQ(S.getNumPropagations(), 0u);
  EXPECT_EQ(S.getNumLearnedClauses(), 0u);
  EXPECT_EQ(S.getNumRestarts(), 0u);
}

TEST(SatSolverStats, PropagationsCountForcedAssignments) {
  // V0 -> V1 -> ... -> V9 with V0 asserted: nine clause-driven propagations
  // (the root unit enqueue itself is not clause propagation).
  Solver S;
  std::vector<Var> V;
  for (int I = 0; I < 10; ++I)
    V.push_back(S.newVar());
  for (int I = 0; I + 1 < 10; ++I)
    EXPECT_TRUE(S.addClause({negLit(V[I]), posLit(V[I + 1])}));
  EXPECT_TRUE(S.addClause({posLit(V[0])}));
  EXPECT_EQ(S.solve(), Solver::Result::Sat);
  EXPECT_EQ(S.getNumPropagations(), 9u);
  EXPECT_EQ(S.getNumConflicts(), 0u);
}

TEST(SatSolverStats, UnsatInstanceProducesConflictsAndLearnedClauses) {
  // Pigeonhole 3-into-2: refutation requires conflicts, each of which
  // learns a clause; decisions must also have happened.
  Solver S;
  Var X[3][2];
  for (auto &Row : X)
    for (Var &V : Row)
      V = S.newVar();
  for (int P = 0; P < 3; ++P)
    EXPECT_TRUE(S.addClause({posLit(X[P][0]), posLit(X[P][1])}));
  for (int H = 0; H < 2; ++H)
    for (int P = 0; P < 3; ++P)
      for (int Q = P + 1; Q < 3; ++Q)
        EXPECT_TRUE(S.addClause({negLit(X[P][H]), negLit(X[Q][H])}));
  EXPECT_EQ(S.solve(), Solver::Result::Unsat);
  EXPECT_GT(S.getNumConflicts(), 0u);
  EXPECT_GT(S.getNumDecisions(), 0u);
  EXPECT_GT(S.getNumPropagations(), 0u);
  EXPECT_GT(S.getNumLearnedClauses(), 0u);
  EXPECT_LE(S.getNumLearnedClauses(), S.getNumConflicts());
}

TEST(SatSolverStats, CountersAccumulateAcrossIncrementalSolves) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  EXPECT_TRUE(S.addClause({posLit(A), posLit(B)}));
  EXPECT_EQ(S.solve(), Solver::Result::Sat);
  uint64_t D1 = S.getNumDecisions();
  EXPECT_TRUE(S.addClause({negLit(A)}));
  EXPECT_EQ(S.solve(), Solver::Result::Sat);
  EXPECT_GE(S.getNumDecisions(), D1);
}

TEST(SatSolverStats, RestartsFireOnHardInstances) {
  // Pigeonhole 7-into-6 forces well over the first Luby restart limit of
  // 100 conflicts.
  constexpr int P = 7, H = 6;
  Solver S;
  std::vector<std::vector<Var>> X(P, std::vector<Var>(H));
  for (auto &Row : X)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J < H; ++J)
      C.push_back(posLit(X[I][J]));
    EXPECT_TRUE(S.addClause(C));
  }
  for (int J = 0; J < H; ++J)
    for (int I = 0; I < P; ++I)
      for (int K = I + 1; K < P; ++K)
        EXPECT_TRUE(S.addClause({negLit(X[I][J]), negLit(X[K][J])}));
  EXPECT_EQ(S.solve(), Solver::Result::Unsat);
  EXPECT_GT(S.getNumConflicts(), 100u);
  EXPECT_GT(S.getNumRestarts(), 0u);
}

TEST(MaxSatStats, CallsNodesAndPrunesAreCounted) {
  MaxSatSolver M;
  int A = M.addVars(2);
  M.addHard({posLit(A), posLit(A + 1)});
  M.addHard({negLit(A), negLit(A + 1)});
  M.addSoft({posLit(A)}, 3);
  M.addSoft({posLit(A + 1)}, 5);
  EXPECT_EQ(M.getStats().Calls, 0u);
  ASSERT_TRUE(M.solve().has_value());
  MaxSatStats S1 = M.getStats();
  EXPECT_EQ(S1.Calls, 1u);
  EXPECT_GT(S1.Nodes, 0u);
  EXPECT_GT(S1.ModelsFound, 0u);
  // The two-model search space with conflicting softs must cut something:
  // either by bound or by a falsified hard clause.
  EXPECT_GT(S1.BoundPrunes + S1.ConflictPrunes, 0u);

  // Stats accumulate across calls.
  ASSERT_TRUE(M.solve().has_value());
  MaxSatStats S2 = M.getStats();
  EXPECT_EQ(S2.Calls, 2u);
  EXPECT_GE(S2.Nodes, S1.Nodes);
}

TEST(MaxSatStats, UnsatHardClausesCountConflictPrunes) {
  MaxSatSolver M;
  int A = M.addVars(1);
  M.addHard({posLit(A)});
  M.addHard({negLit(A)});
  EXPECT_FALSE(M.solve().has_value());
  EXPECT_EQ(M.getStats().Calls, 1u);
  EXPECT_GT(M.getStats().ConflictPrunes, 0u);
  EXPECT_EQ(M.getStats().ModelsFound, 0u);
}

namespace {

struct RandomMaxSatCase {
  int Vars;
  int Hard;
  int Soft;
  uint64_t Seed;
};

class RandomMaxSat : public ::testing::TestWithParam<RandomMaxSatCase> {};

} // namespace

TEST_P(RandomMaxSat, OptimumMatchesBruteForce) {
  RandomMaxSatCase C = GetParam();
  Rng R(C.Seed);
  for (int Iter = 0; Iter < 20; ++Iter) {
    std::vector<std::vector<Lit>> Hard;
    std::vector<SoftClause> Soft;
    for (int I = 0; I < C.Hard; ++I) {
      std::vector<Lit> Cl;
      for (int K = 0, Len = R.nextInt(1, 3); K < Len; ++K)
        Cl.push_back(Lit(R.nextInt(0, C.Vars - 1), R.chance(1, 2)));
      Hard.push_back(std::move(Cl));
    }
    for (int I = 0; I < C.Soft; ++I) {
      std::vector<Lit> Cl;
      for (int K = 0, Len = R.nextInt(1, 2); K < Len; ++K)
        Cl.push_back(Lit(R.nextInt(0, C.Vars - 1), R.chance(1, 2)));
      Soft.push_back({std::move(Cl), static_cast<uint64_t>(R.nextInt(1, 9))});
    }
    MaxSatSolver M;
    M.addVars(C.Vars);
    for (auto &Cl : Hard)
      M.addHard(Cl);
    for (auto &Sc : Soft)
      M.addSoft(Sc.Lits, Sc.Weight);
    std::optional<MaxSatResult> Got = M.solve();
    std::optional<uint64_t> Expected = bruteForceMaxSat(C.Vars, Hard, Soft);
    ASSERT_EQ(Got.has_value(), Expected.has_value());
    if (Got) {
      ASSERT_EQ(Got->Weight, *Expected) << "seed " << C.Seed << " iter " << Iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SweepSizes, RandomMaxSat,
    ::testing::Values(RandomMaxSatCase{4, 3, 5, 11},
                      RandomMaxSatCase{6, 5, 8, 12},
                      RandomMaxSatCase{8, 6, 12, 13},
                      RandomMaxSatCase{10, 8, 15, 14}));

//===----------------------------------------------------------------------===//
// Solve-under-assumptions and the incremental engine
//===----------------------------------------------------------------------===//

namespace {

/// Forces a solver engine for its scope, restoring the ambient one.
class EngineGuard {
public:
  explicit EngineGuard(bool Incremental) : Saved(satIncrementalEnabled()) {
    setSatIncrementalEnabled(Incremental);
  }
  ~EngineGuard() { setSatIncrementalEnabled(Saved); }

private:
  bool Saved;
};

std::vector<std::vector<Lit>> randomClauses(Rng &R, int NumVars,
                                            int NumClauses) {
  std::vector<std::vector<Lit>> Cs;
  for (int I = 0; I < NumClauses; ++I) {
    std::vector<Lit> C;
    for (int K = 0, Len = R.nextInt(1, 3); K < Len; ++K)
      C.push_back(Lit(R.nextInt(0, NumVars - 1), R.chance(1, 2)));
    Cs.push_back(std::move(C));
  }
  return Cs;
}

/// Appends each assumption as a unit clause: the reference semantics of
/// solving under assumptions.
std::vector<std::vector<Lit>>
withUnits(std::vector<std::vector<Lit>> Clauses, const std::vector<Lit> &As) {
  for (Lit A : As)
    Clauses.push_back({A});
  return Clauses;
}

} // namespace

TEST(SatAssumption, AgreesWithScratchSolverOnRandomInstances) {
  for (bool Engine : {false, true}) {
    EngineGuard G(Engine);
    Rng R(Engine ? 71 : 72);
    for (int Iter = 0; Iter < 25; ++Iter) {
      int NumVars = R.nextInt(3, 10);
      std::vector<std::vector<Lit>> Clauses =
          randomClauses(R, NumVars, R.nextInt(2, 18));
      // One long-lived solver answers every query of this instance; each
      // query is checked against brute force, a scratch solver with the
      // assumptions as unit clauses, and (when unsat) its own conflict.
      Solver P;
      for (int V = 0; V < NumVars; ++V)
        P.newVar();
      for (const std::vector<Lit> &C : Clauses)
        P.addClause(C);
      for (int Query = 0; Query < 8; ++Query) {
        std::vector<Lit> As;
        for (int K = 0, N = R.nextInt(0, 3); K < N; ++K)
          As.push_back(Lit(R.nextInt(0, NumVars - 1), R.chance(1, 2)));
        bool Expected = bruteForceSat(NumVars, withUnits(Clauses, As));
        Solver::Result Got = P.solve(As);
        EXPECT_EQ(Got == Solver::Result::Sat, Expected)
            << "engine " << Engine << " iter " << Iter << " query " << Query;
        Solver Scratch;
        for (int V = 0; V < NumVars; ++V)
          Scratch.newVar();
        bool Ok = true;
        for (const std::vector<Lit> &C : withUnits(Clauses, As))
          Ok = Scratch.addClause(C) && Ok;
        EXPECT_EQ(!Ok || Scratch.solve() != Solver::Result::Sat,
                  Got != Solver::Result::Sat);
        if (Got == Solver::Result::Sat)
          continue;
        // The blamed subset must consist of given assumptions and be
        // genuinely unsatisfiable when re-asserted as units.
        const std::vector<Lit> &Conflict = P.getConflict();
        for (Lit L : Conflict)
          EXPECT_TRUE(std::find(As.begin(), As.end(), L) != As.end());
        EXPECT_FALSE(bruteForceSat(NumVars, withUnits(Clauses, Conflict)));
      }
    }
  }
}

TEST(SatAssumption, ConflictSubsetBlamesOnlyFailedAssumptions) {
  for (bool Engine : {false, true}) {
    EngineGuard G(Engine);
    Solver S;
    Var A = S.newVar(), B = S.newVar(), C = S.newVar(), D = S.newVar();
    EXPECT_TRUE(S.addClause({negLit(A), negLit(B)}));
    EXPECT_EQ(S.solve({posLit(C), posLit(A), posLit(B), posLit(D)}),
              Solver::Result::Unsat);
    const std::vector<Lit> &Conflict = S.getConflict();
    EXPECT_FALSE(Conflict.empty());
    for (Lit L : Conflict) {
      EXPECT_TRUE(L == posLit(A) || L == posLit(B))
          << "irrelevant assumption " << L.str() << " blamed";
    }
    // An assumption failure does not poison the solver.
    EXPECT_EQ(S.solve({posLit(C), posLit(D)}), Solver::Result::Sat);
    EXPECT_TRUE(S.modelValue(C));
    EXPECT_TRUE(S.modelValue(D));
    EXPECT_EQ(S.solve(), Solver::Result::Sat);
    // Root-level unsatisfiability reports an empty conflict.
    Solver S2;
    Var X = S2.newVar();
    Var Y = S2.newVar();
    bool Ok = S2.addClause({posLit(X)});
    Ok = S2.addClause({negLit(X)}) && Ok;
    EXPECT_FALSE(Ok);
    EXPECT_EQ(S2.solve({posLit(Y)}), Solver::Result::Unsat);
    EXPECT_TRUE(S2.getConflict().empty());
  }
}

TEST(SatAssumption, SatisfiedAndFlippedAssumptionsResolve) {
  for (bool Engine : {false, true}) {
    EngineGuard G(Engine);
    Solver S;
    Var A = S.newVar(), B = S.newVar();
    EXPECT_TRUE(S.addClause({posLit(A)}));
    // Already-true assumption (root fact) is vacuous.
    EXPECT_EQ(S.solve({posLit(A)}), Solver::Result::Sat);
    // Assumption flips across queries: the same free variable is pinned
    // both ways in turn — the VC enumerator's probe pattern.
    EXPECT_EQ(S.solve({posLit(A), posLit(B)}), Solver::Result::Sat);
    EXPECT_TRUE(S.modelValue(B));
    EXPECT_EQ(S.solve({posLit(A), negLit(B)}), Solver::Result::Sat);
    EXPECT_FALSE(S.modelValue(B));
    EXPECT_EQ(S.solve({negLit(A)}), Solver::Result::Unsat);
    ASSERT_EQ(S.getConflict().size(), 1u);
    EXPECT_EQ(S.getConflict()[0], negLit(A));
  }
}

//===----------------------------------------------------------------------===//
// Learned-clause database reduction
//===----------------------------------------------------------------------===//

TEST(SatReduceDb, ModelEnumerationStaysSoundAcrossReductions) {
  for (bool Engine : {false, true}) {
    EngineGuard G(Engine);
    Rng R(Engine ? 91 : 92);
    // Plant a model so the instance is satisfiable, then enumerate models
    // with full blocking clauses, reducing the learned database every few
    // draws: reduction must never lose an original clause, invent a model,
    // or corrupt the standing trail the incremental engine keeps.
    const int NumVars = 12;
    std::vector<bool> Planted(NumVars);
    for (int V = 0; V < NumVars; ++V)
      Planted[V] = R.chance(1, 2);
    std::vector<std::vector<Lit>> Clauses;
    for (int I = 0; I < 60; ++I) {
      std::vector<Lit> C;
      int Pin = R.nextInt(0, NumVars - 1);
      C.push_back(Planted[Pin] ? posLit(Pin) : negLit(Pin));
      for (int K = 0, Len = R.nextInt(1, 2); K < Len; ++K)
        C.push_back(Lit(R.nextInt(0, NumVars - 1), R.chance(1, 2)));
      Clauses.push_back(std::move(C));
    }
    Solver S;
    for (int V = 0; V < NumVars; ++V)
      S.newVar();
    for (const std::vector<Lit> &C : Clauses)
      ASSERT_TRUE(S.addClause(C));
    std::set<std::vector<bool>> Seen;
    int Draws = 0;
    while (S.solve() == Solver::Result::Sat && Draws < 5000) {
      ++Draws;
      std::vector<bool> M(NumVars);
      std::vector<Lit> Block;
      for (int V = 0; V < NumVars; ++V) {
        M[V] = S.modelValue(V);
        Block.push_back(M[V] ? negLit(V) : posLit(V));
      }
      for (const std::vector<Lit> &C : Clauses) {
        bool Sat = false;
        for (Lit L : C)
          Sat = Sat || M[L.var()] != L.negated();
        EXPECT_TRUE(Sat) << "model violates an original clause";
      }
      EXPECT_TRUE(Seen.insert(M).second) << "model drawn twice";
      if (!S.addClause(std::move(Block)))
        break;
      if (Draws % 16 == 0)
        S.reduceDB();
    }
    EXPECT_GT(Draws, 0);
    ASSERT_LT(Draws, 5000);
    if (Draws >= 16)
      EXPECT_GT(S.getNumReduceDbs(), 0u);
    // Every planted-model instance keeps at least the planted model.
    EXPECT_TRUE(Seen.count(Planted));
  }
}

TEST(SatReduceDb, ConflictHeavyRunDeletesColdLearnedClauses) {
  EngineGuard G(true);
  // Pigeonhole PHP(6,5): unsatisfiable, conflict-heavy — the search learns
  // far more clauses than the original encoding holds.
  Solver S;
  const int Pigeons = 6, Holes = 5;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (int I = 0; I < Pigeons; ++I)
    for (int H = 0; H < Holes; ++H)
      P[I][H] = S.newVar();
  for (int I = 0; I < Pigeons; ++I) {
    std::vector<Lit> Alo;
    for (int H = 0; H < Holes; ++H)
      Alo.push_back(posLit(P[I][H]));
    EXPECT_TRUE(S.addClause(std::move(Alo)));
  }
  for (int H = 0; H < Holes; ++H)
    for (int I = 0; I < Pigeons; ++I)
      for (int K = I + 1; K < Pigeons; ++K)
        EXPECT_TRUE(S.addClause({negLit(P[I][H]), negLit(P[K][H])}));
  EXPECT_EQ(S.solve(), Solver::Result::Unsat);
  ASSERT_GT(S.getNumLearnedClauses(), 100u);
  // Glue statistics were tracked while learning.
  EXPECT_GT(S.getLbdCount(), 0u);
  EXPECT_GE(S.getLbdSum(), S.getLbdCount());
  size_t Before = S.getNumClauses();
  S.reduceDB();
  EXPECT_GT(S.getNumReduceDbs(), 0u);
  EXPECT_GT(S.getNumDeletedClauses(), 0u);
  EXPECT_LT(S.getNumClauses(), Before);
  // Reduction keeps the refutation: the instance stays unsat.
  EXPECT_EQ(S.solve(), Solver::Result::Unsat);
}
