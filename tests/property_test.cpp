//===- tests/property_test.cpp - Cross-module property tests -----------------===//
//
// Property-based tests of the core invariants: SAT model validity, Steiner
// cover structure, join-order insensitivity of natural chains, equivalence
// of synthesized programs under randomized workloads, and soundness of MFI
// blocking.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Benchmark.h"
#include "sat/Solver.h"
#include "sketch/JoinGraph.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace migrator;
using namespace migrator::test;

//===----------------------------------------------------------------------===//
// SAT: models satisfy every clause (checked without brute force, so larger
// instances than the exhaustive tests can cover).
//===----------------------------------------------------------------------===//

namespace {

class SatModelValidity : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(SatModelValidity, ModelsSatisfyAllClauses) {
  Rng R(GetParam());
  for (int Iter = 0; Iter < 10; ++Iter) {
    int Vars = R.nextInt(15, 40);
    int NumClauses = R.nextInt(Vars, Vars * 4);
    sat::Solver S;
    for (int V = 0; V < Vars; ++V)
      S.newVar();
    std::vector<std::vector<sat::Lit>> Clauses;
    bool Trivial = false;
    for (int I = 0; I < NumClauses; ++I) {
      std::vector<sat::Lit> C;
      for (int K = 0, Len = R.nextInt(1, 4); K < Len; ++K)
        C.push_back(sat::Lit(R.nextInt(0, Vars - 1), R.chance(1, 2)));
      Clauses.push_back(C);
      if (!S.addClause(C))
        Trivial = true;
    }
    if (Trivial || S.solve() != sat::Solver::Result::Sat)
      continue;
    for (const std::vector<sat::Lit> &C : Clauses) {
      bool Sat = false;
      for (const sat::Lit &L : C)
        Sat |= S.modelValue(L.var()) != L.negated();
      ASSERT_TRUE(Sat) << "model violates a clause (seed " << GetParam()
                       << ", iter " << Iter << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatModelValidity,
                         ::testing::Values(101, 102, 103, 104, 105));

//===----------------------------------------------------------------------===//
// Steiner covers: structural invariants on random schemas.
//===----------------------------------------------------------------------===//

namespace {

Schema randomSchema(Rng &R, int NumTables) {
  Schema S("Rand");
  // A pool of shared attribute names creates join edges.
  for (int T = 0; T < NumTables; ++T) {
    std::vector<Attribute> Attrs;
    Attrs.push_back({"t" + std::to_string(T) + "pk", ValueType::Int});
    for (int A = R.nextInt(1, 3); A > 0; --A)
      Attrs.push_back({"shared" + std::to_string(R.nextInt(0, NumTables)),
                       ValueType::Int});
    // Deduplicate attribute names within the table.
    std::vector<Attribute> Unique;
    for (const Attribute &A : Attrs) {
      bool Seen = false;
      for (const Attribute &U : Unique)
        Seen |= U.Name == A.Name;
      if (!Seen)
        Unique.push_back(A);
    }
    S.addTable(TableSchema("T" + std::to_string(T), std::move(Unique)));
  }
  return S;
}

} // namespace

TEST(SteinerProperty, CoversContainTerminalsAndAreConnected) {
  Rng R(77);
  for (int Iter = 0; Iter < 30; ++Iter) {
    Schema S = randomSchema(R, R.nextInt(3, 7));
    JoinGraph G(S);
    std::vector<std::string> Terminals;
    int NumTerm = R.nextInt(1, 2);
    for (int I = 0; I < NumTerm; ++I)
      Terminals.push_back(
          "T" + std::to_string(R.nextInt(0, static_cast<int>(
                                                S.getNumTables()) - 1)));
    unsigned Slack = static_cast<unsigned>(R.nextInt(0, 2));
    for (const std::vector<std::string> &Cover :
         G.steinerCovers(Terminals, Slack)) {
      // Terminals included.
      for (const std::string &T : Terminals)
        EXPECT_NE(std::find(Cover.begin(), Cover.end(), T), Cover.end());
      // Slack respected.
      std::set<std::string> TermSet(Terminals.begin(), Terminals.end());
      EXPECT_LE(Cover.size(), TermSet.size() + Slack);
      // Connectivity: BFS over the cover.
      std::set<std::string> Seen = {Cover[0]};
      std::vector<std::string> Work = {Cover[0]};
      while (!Work.empty()) {
        std::string Cur = Work.back();
        Work.pop_back();
        for (const std::string &N : Cover)
          if (!Seen.count(N) && G.joinable(Cur, N)) {
            Seen.insert(N);
            Work.push_back(N);
          }
      }
      EXPECT_EQ(Seen.size(), Cover.size()) << "disconnected cover";
    }
  }
}

//===----------------------------------------------------------------------===//
// Natural chains: table order does not affect query results (join classes
// are order-insensitive).
//===----------------------------------------------------------------------===//

TEST(JoinOrderProperty, NaturalChainOrderInsensitive) {
  ParseOutput Out = parseOrDie(overviewSource());
  ParseOutput Exp = parseOrDie(overviewExpected());
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &PNew = Exp.findProgram("CourseAppNew")->Prog;

  // Populate via the migrated program.
  Database DB(Tgt);
  Evaluator Eval(Tgt);
  UidGen Uids;
  for (int I = 0; I < 4; ++I) {
    ASSERT_TRUE(Eval.callUpdate(PNew.getFunction("addInstructor"),
                                {Value::makeInt(I),
                                 Value::makeString("n" + std::to_string(I)),
                                 Value::makeBinary("p" + std::to_string(I))},
                                DB, Uids));
    ASSERT_TRUE(Eval.callUpdate(PNew.getFunction("addTA"),
                                {Value::makeInt(I),
                                 Value::makeString("t" + std::to_string(I)),
                                 Value::makeBinary("q" + std::to_string(I))},
                                DB, Uids));
  }

  // A two-table chain with matches, and a three-table chain that is empty
  // (instructor and TA pictures never share keys): both must be invariant
  // under table order.
  std::vector<std::vector<std::string>> ChainSets = {
      {"Picture", "TA"}, {"Picture", "TA", "Instructor"}};
  std::vector<std::vector<AttrRef>> Projs = {
      {AttrRef::unqualified("TName"), AttrRef::unqualified("Pic")},
      {AttrRef::unqualified("IName"), AttrRef::unqualified("TName")}};
  for (size_t C = 0; C < ChainSets.size(); ++C) {
    std::vector<std::string> Tables = ChainSets[C];
    std::sort(Tables.begin(), Tables.end());
    std::optional<ResultTable> Reference;
    do {
      QueryPtr Q = makeSelect(Projs[C], JoinChain::natural(Tables), nullptr);
      std::optional<ResultTable> R = Eval.evalQuery(*Q, {}, DB);
      ASSERT_TRUE(R.has_value());
      if (C == 0) {
        EXPECT_EQ(R->getNumRows(), 4u);
      }
      if (!Reference)
        Reference = std::move(R);
      else
        EXPECT_TRUE(resultsEquivalent(*Reference, *R));
    } while (std::next_permutation(Tables.begin(), Tables.end()));
  }
}

//===----------------------------------------------------------------------===//
// Synthesized programs stay equivalent under randomized workloads drawn
// from a larger value domain than the tester's seed sets.
//===----------------------------------------------------------------------===//

namespace {

class RandomWorkload : public ::testing::TestWithParam<const char *> {};

Value randomValueOf(ValueType Ty, Rng &R) {
  switch (Ty) {
  case ValueType::Int:
    return Value::makeInt(R.nextInt(0, 3));
  case ValueType::String:
    return Value::makeString(std::string(1, static_cast<char>(
                                                'A' + R.nextInt(0, 3))));
  case ValueType::Binary:
    return Value::makeBinary("b" + std::to_string(R.nextInt(0, 3)));
  case ValueType::Bool:
    return Value::makeBool(R.chance(1, 2));
  }
  return Value();
}

} // namespace

TEST_P(RandomWorkload, SynthesizedProgramSurvivesRandomSequences) {
  Benchmark B = loadBenchmark(GetParam());
  SynthResult SR = synthesize(B.Source, B.Prog, B.Target);
  ASSERT_TRUE(SR.succeeded());

  std::vector<std::string> Updates = B.Prog.updateFunctionNames();
  std::vector<std::string> Queries = B.Prog.queryFunctionNames();
  Rng R(2026);
  for (int Trial = 0; Trial < 60; ++Trial) {
    InvocationSeq Seq;
    for (int L = R.nextInt(0, 5); L > 0; --L) {
      const std::string &F =
          Updates[R.next(Updates.size())];
      std::vector<Value> Args;
      for (const Param &P : B.Prog.getFunction(F).getParams())
        Args.push_back(randomValueOf(P.Type, R));
      Seq.push_back({F, std::move(Args)});
    }
    const std::string &Q = Queries[R.next(Queries.size())];
    std::vector<Value> QArgs;
    for (const Param &P : B.Prog.getFunction(Q).getParams())
      QArgs.push_back(randomValueOf(P.Type, R));
    Seq.push_back({Q, std::move(QArgs)});

    std::optional<ResultTable> Old = runSequence(B.Prog, B.Source, Seq);
    std::optional<ResultTable> New = runSequence(*SR.Prog, B.Target, Seq);
    ASSERT_TRUE(Old.has_value());
    ASSERT_TRUE(New.has_value());
    EXPECT_TRUE(resultsEquivalent(*Old, *New))
        << "diverges on: " << sequenceStr(Seq);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Textbook, RandomWorkload,
    ::testing::Values("Oracle-1", "Ambler-1", "Ambler-3", "Ambler-5",
                      "Ambler-8"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      std::string N = Info.param;
      for (char &C : N)
        if (C == '-')
          C = '_';
      return N;
    });

//===----------------------------------------------------------------------===//
// MFI blocking soundness: every assignment pruned by an MFI blocking clause
// instantiates to a program that fails on that very input.
//===----------------------------------------------------------------------===//

TEST(MfiSoundness, BlockedAssignmentsFailOnTheMfi) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Schema &Src = *Out.findSchema("CourseDB");
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &Prog = Out.findProgram("CourseApp")->Prog;

  // Synthesize while recording one MFI by hand: run the tester on a known
  // bad candidate, then check several programs agreeing on the blocked
  // holes also fail on the MFI.
  SynthResult SR = synthesize(Src, Prog, Tgt);
  ASSERT_TRUE(SR.succeeded());

  // Bad candidate: getTAInfo reads through the Instructor chain.
  ParseOutput Bad = parseOrDie(R"(
program Broken on CourseDBNew {
  update addInstructor(id: int, name: string, pic: binary) {
    insert into Picture join Instructor values (InstId: id, IName: name, Pic: pic);
  }
  update deleteInstructor(id: int) {
    delete [Instructor] from Picture join Instructor where InstId = id;
  }
  query getInstructorInfo(id: int) {
    select IName, Pic from Picture join Instructor where InstId = id;
  }
  update addTA(id: int, name: string, pic: binary) {
    insert into Picture join TA values (TaId: id, TName: name, Pic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from Picture join TA where TaId = id;
  }
  query getTAInfo(id: int) {
    select IName, Pic from Picture join Instructor where InstId = id;
  }
}
)");
  const Program &BadProg = Bad.findProgram("Broken")->Prog;
  EquivalenceTester T(Src, Prog, Tgt);
  TestOutcome O = T.test(BadProg);
  ASSERT_EQ(O.TheKind, TestOutcome::Kind::Failing);

  // The MFI's verdict is stable under changes to functions it does not
  // mention: grafting the correct deleteInstructor into the bad program
  // leaves the same failing input failing (the key soundness fact behind
  // partial blocking).
  Program Hybrid;
  for (const Function &F : BadProg.getFunctions()) {
    if (F.getName() == "deleteInstructor")
      Hybrid.addFunction(SR.Prog->getFunction("deleteInstructor").clone());
    else
      Hybrid.addFunction(F.clone());
  }
  std::optional<ResultTable> SrcR = runSequence(Prog, Src, O.Mfi);
  std::optional<ResultTable> HybR = runSequence(Hybrid, Tgt, O.Mfi);
  ASSERT_TRUE(SrcR.has_value());
  ASSERT_TRUE(HybR.has_value());
  EXPECT_FALSE(resultsEquivalent(*SrcR, *HybR));
}
