//===- tests/TestUtil.h - Shared test fixtures ---------------------*- C++ -*-===//
//
// Part of the Migrator project test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers: parse-or-die wrappers and the paper's overview example
/// (the course database of Sec. 2) used across many test files.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_TESTS_TESTUTIL_H
#define MIGRATOR_TESTS_TESTUTIL_H

#include "parse/Parser.h"

#include <gtest/gtest.h>

namespace migrator {
namespace test {

/// Parses \p Src, failing the test on a diagnostic.
inline ParseOutput parseOrDie(std::string_view Src) {
  std::variant<ParseOutput, ParseError> R = parseUnit(Src);
  if (auto *E = std::get_if<ParseError>(&R)) {
    ADD_FAILURE() << "parse error: " << E->str();
    return ParseOutput();
  }
  return std::move(std::get<ParseOutput>(R));
}

/// The overview example of Sec. 2: source schema, target schema, and the
/// Fig. 2 program.
inline const char *overviewSource() {
  return R"(
schema CourseDB {
  table Class(ClassId: int, InstId: int, TaId: int)
  table Instructor(InstId: int, IName: string, IPic: binary)
  table TA(TaId: int, TName: string, TPic: binary)
}
schema CourseDBNew {
  table Class(ClassId: int, InstId: int, TaId: int)
  table Instructor(InstId: int, IName: string, PicId: int)
  table TA(TaId: int, TName: string, PicId: int)
  table Picture(PicId: int, Pic: binary)
}
program CourseApp on CourseDB {
  update addInstructor(id: int, name: string, pic: binary) {
    insert into Instructor values (InstId: id, IName: name, IPic: pic);
  }
  update deleteInstructor(id: int) {
    delete [Instructor] from Instructor where InstId = id;
  }
  query getInstructorInfo(id: int) {
    select IName, IPic from Instructor where InstId = id;
  }
  update addTA(id: int, name: string, pic: binary) {
    insert into TA values (TaId: id, TName: name, TPic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from TA where TaId = id;
  }
  query getTAInfo(id: int) {
    select TName, TPic from TA where TaId = id;
  }
}
)";
}

/// The hand-written Fig. 4 result over the new schema (one of the programs
/// equivalent to the source).
inline const char *overviewExpected() {
  return R"(
program CourseAppNew on CourseDBNew {
  update addInstructor(id: int, name: string, pic: binary) {
    insert into Picture join Instructor values (InstId: id, IName: name, Pic: pic);
  }
  update deleteInstructor(id: int) {
    delete [Instructor] from Picture join Instructor where InstId = id;
  }
  query getInstructorInfo(id: int) {
    select IName, Pic from Picture join Instructor where InstId = id;
  }
  update addTA(id: int, name: string, pic: binary) {
    insert into Picture join TA values (TaId: id, TName: name, Pic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from Picture join TA where TaId = id;
  }
  query getTAInfo(id: int) {
    select TName, Pic from Picture join TA where TaId = id;
  }
}
)";
}

} // namespace test
} // namespace migrator

#endif // MIGRATOR_TESTS_TESTUTIL_H
