//===- bench/bench_table2.cpp - Table 2: comparison with Sketch/CEGIS -------===//
//
// Regenerates Table 2 of the paper: Migrator's MFI-guided sketch completion
// against a CEGIS baseline (the substitution for the Sketch tool [47]; see
// DESIGN.md). Both run the identical pipeline except for the sketch-solving
// strategy; the baseline gets a capped budget and the speedup is reported
// relative to Migrator's synthesis time.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace migrator;
using namespace migrator::bench;

int main() {
  std::printf("Table 2: comparison with a CEGIS baseline standing in for "
              "Sketch (cf. PLDI 2019, Table 2)\n");
  std::printf("(first-alternative bias disabled for ALL strategies: the "
              "paper's solvers have no such heuristic)\n\n");
  std::printf("%-16s %12s %14s %9s\n", "Benchmark", "Migrator(s)",
              "CEGIS(s)", "Speedup");
  std::printf("------------------------------------------------------\n");

  for (const std::string &Name : allBenchmarkNames()) {
    Benchmark B = loadBenchmark(Name);

    SynthOptions Fast;
    Fast.Solver.BiasFirstAlternatives = false;
    Fast.TimeBudgetSec = budgetFor(B);
    SynthResult RM = synthesize(B.Source, B.Prog, B.Target, Fast);

    SynthOptions Cegis;
    Cegis.Solver.TheMode = SolverOptions::Mode::Cegis;
    Cegis.Solver.BiasFirstAlternatives = false;
    Cegis.TimeBudgetSec = baselineBudgetFor(B);
    SynthResult RC = synthesize(B.Source, B.Prog, B.Target, Cegis);

    bool CegisTimedOut = !RC.succeeded();
    double CegisTime =
        CegisTimedOut ? Cegis.TimeBudgetSec : RC.Stats.SynthTimeSec;
    double MigTime = RM.Stats.SynthTimeSec;
    double Speedup = MigTime > 0 ? CegisTime / MigTime : 0;

    std::printf("%-16s %12s %14s %s%8.1fx\n", B.Name.c_str(),
                fmtTime(MigTime, !RM.succeeded()).c_str(),
                fmtTime(CegisTime, CegisTimedOut).c_str(),
                CegisTimedOut ? ">" : " ", Speedup);
    std::fflush(stdout);
  }
  return 0;
}
