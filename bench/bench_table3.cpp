//===- bench/bench_table3.cpp - Table 3: symbolic enumerative search --------===//
//
// Regenerates Table 3 of the paper: Migrator against the same pipeline with
// MFI pruning disabled — the baseline blocks one full model per failure
// instead of the partial assignment derived from a minimum failing input.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace migrator;
using namespace migrator::bench;

int main() {
  std::printf("Table 3: comparison with symbolic enumerative search "
              "(cf. PLDI 2019, Table 3)\n");
  std::printf("(first-alternative bias disabled for ALL strategies: the "
              "paper's solvers have no such heuristic)\n\n");
  std::printf("%-16s | %7s %12s | %9s %12s | %9s\n", "Benchmark", "MfiIt",
              "Migrator(s)", "EnumIt", "Enum(s)", "Speedup");
  std::printf("--------------------------------------------------------------"
              "--------\n");

  for (const std::string &Name : allBenchmarkNames()) {
    Benchmark B = loadBenchmark(Name);

    SynthOptions Fast;
    Fast.Solver.BiasFirstAlternatives = false;
    Fast.TimeBudgetSec = budgetFor(B);
    SynthResult RM = synthesize(B.Source, B.Prog, B.Target, Fast);

    SynthOptions Enum;
    Enum.Solver.TheMode = SolverOptions::Mode::Enumerative;
    Enum.Solver.BiasFirstAlternatives = false;
    Enum.TimeBudgetSec = baselineBudgetFor(B);
    SynthResult RE = synthesize(B.Source, B.Prog, B.Target, Enum);

    bool EnumTimedOut = !RE.succeeded();
    double EnumTime =
        EnumTimedOut ? Enum.TimeBudgetSec : RE.Stats.SynthTimeSec;
    double Speedup =
        RM.Stats.SynthTimeSec > 0 ? EnumTime / RM.Stats.SynthTimeSec : 0;

    std::printf("%-16s | %7llu %12s | %s%7llu %12s | %s%7.1fx\n",
                B.Name.c_str(),
                static_cast<unsigned long long>(RM.Stats.Iters),
                fmtTime(RM.Stats.SynthTimeSec, !RM.succeeded()).c_str(),
                EnumTimedOut ? ">" : " ",
                static_cast<unsigned long long>(RE.Stats.Iters),
                fmtTime(EnumTime, EnumTimedOut).c_str(),
                EnumTimedOut ? ">" : " ", Speedup);
    std::fflush(stdout);
  }
  return 0;
}
