//===- bench/bench_sweep.cpp - Engine sweep (BENCH_PR5.json) ----------------===//
//
// Measures the parallel synthesis engine, the indexed join engine, and the
// copy-on-write state engine (docs/PERFORMANCE.md) and emits a
// machine-readable report:
//
//  * per benchmark, wall-clock at jobs = 1, 2, and 4 (batch 4,
//    deterministic, first-alternative bias off so candidate testing
//    dominates), plus a source-cache on/off pair at jobs = 1 (the cache
//    forced on for its rows — by default synthesize() only attaches it in
//    parallel mode);
//  * an eval-dominated three-table-join workload evaluated with the indexed
//    engine and with the naive nested-loop oracle (MIGRATOR_NO_INDEX
//    semantics), reporting wall-clock and the eval.tuples_scanned /
//    eval.index_probes counters — the index speedup in isolation;
//  * the state-engine ablation: each benchmark synthesized at jobs = 1
//    under COW on/off x failure-corpus on/off, reporting wall-clock,
//    peak RSS (reset per configuration via /proc/self/clear_refs), the
//    table.cow_shares / table.cow_clones and tester.corpus_* counters, and
//    a hash of the synthesized program — identical across all four
//    configurations by construction.
//
// Usage: bench_sweep [output.json]     (default BENCH_PR5.json)
//
// Environment: MIGRATOR_BENCH_BUDGET caps the per-run budget (seconds);
// MIGRATOR_SWEEP_BENCHMARKS is a comma-separated benchmark-name override.
//
// The report records the host's hardware concurrency: thread-scaling
// numbers are only meaningful when the host actually has the cores (see
// EXPERIMENTS.md for the single-core caveat); the cache on/off delta and
// the hit counters are hardware-independent.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "eval/Evaluator.h"
#include "eval/Plan.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "parse/Parser.h"
#include "relational/Table.h"
#include "support/Timer.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace migrator;
using namespace migrator::bench;

namespace {

uint64_t counterOf(const SynthResult &R, const char *Name) {
  auto It = R.Metrics.Counters.find(Name);
  return It == R.Metrics.Counters.end() ? 0 : It->second;
}

struct SweepRow {
  std::string Bench;
  unsigned Jobs = 1;
  unsigned Batch = 1;
  bool SrcCache = true;
  bool Ok = false;
  double WallSec = 0;
  uint64_t Iters = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t PoolTasks = 0;
  uint64_t PoolSteals = 0;
  uint64_t SeqsRun = 0;

  std::string json() const {
    std::ostringstream O;
    O << "{\"benchmark\": " << obs::jsonString(Bench)
      << ", \"jobs\": " << Jobs << ", \"batch\": " << Batch
      << ", \"src_cache\": " << (SrcCache ? "true" : "false")
      << ", \"ok\": " << (Ok ? "true" : "false")
      << ", \"wall_sec\": " << obs::jsonNumber(WallSec)
      << ", \"iters\": " << Iters << ", \"src_cache_hits\": " << CacheHits
      << ", \"src_cache_misses\": " << CacheMisses
      << ", \"pool_tasks\": " << PoolTasks
      << ", \"pool_steals\": " << PoolSteals
      << ", \"sequences_run\": " << SeqsRun << "}";
    return O.str();
  }
};

SweepRow runOne(const Benchmark &B, unsigned Jobs, unsigned Batch,
                bool UseCache) {
  SynthOptions Opts;
  Opts.Solver.BiasFirstAlternatives = false; // Stress: testing dominates.
  Opts.Jobs = Jobs;
  Opts.Solver.Batch = Batch;
  Opts.Deterministic = true;
  Opts.UseSourceCache = UseCache;
  Opts.SourceCacheMinJobs = 1; // These rows measure the cache itself.
  Opts.TimeBudgetSec = budgetFor(B);

  Timer Clock;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);

  SweepRow Row;
  Row.Bench = B.Name;
  Row.Jobs = Jobs;
  Row.Batch = Batch;
  Row.SrcCache = UseCache;
  Row.Ok = R.succeeded();
  Row.WallSec = Clock.elapsedSeconds();
  Row.Iters = R.Stats.Iters;
  Row.CacheHits = counterOf(R, "tester.src_cache_hits");
  Row.CacheMisses = counterOf(R, "tester.src_cache_misses");
  Row.PoolTasks = counterOf(R, "pool.tasks");
  Row.PoolSteals = counterOf(R, "pool.steals");
  Row.SeqsRun = counterOf(R, "tester.sequences_run");
  std::printf("  %-16s jobs=%u batch=%u cache=%-3s %-4s wall=%.2fs "
              "iters=%llu hits=%llu misses=%llu tasks=%llu steals=%llu\n",
              B.Name.c_str(), Jobs, Batch, UseCache ? "on" : "off",
              Row.Ok ? "ok" : "FAIL", Row.WallSec,
              static_cast<unsigned long long>(Row.Iters),
              static_cast<unsigned long long>(Row.CacheHits),
              static_cast<unsigned long long>(Row.CacheMisses),
              static_cast<unsigned long long>(Row.PoolTasks),
              static_cast<unsigned long long>(Row.PoolSteals));
  std::fflush(stdout);
  return Row;
}

//===----------------------------------------------------------------------===//
// Join-engine workload: indexed engine vs naive oracle
//===----------------------------------------------------------------------===//

/// One run of the eval-dominated join workload under one engine.
struct JoinEngineRow {
  bool Indexed = false;
  double WallSec = 0;
  uint64_t TuplesScanned = 0;
  uint64_t IndexProbes = 0;
  uint64_t IndexBuilds = 0;
  uint64_t PlanCompiles = 0;
  uint64_t PlanCacheHits = 0;
  uint64_t JoinRows = 0;

  std::string json() const {
    std::ostringstream O;
    O << "{\"indexed\": " << (Indexed ? "true" : "false")
      << ", \"wall_sec\": " << obs::jsonNumber(WallSec)
      << ", \"tuples_scanned\": " << TuplesScanned
      << ", \"index_probes\": " << IndexProbes
      << ", \"index_builds\": " << IndexBuilds
      << ", \"plan_compiles\": " << PlanCompiles
      << ", \"plan_cache_hits\": " << PlanCacheHits
      << ", \"join_rows\": " << JoinRows << "}";
    return O.str();
  }
};

/// A three-table key-linked chain: every T1 row joins exactly one T2 and one
/// T3 row, so the naive engine's middle levels scan the full inner tables
/// while the indexed engine reaches them by single-bucket probes.
const char *joinWorkloadSource() {
  return R"(
schema JoinDB {
  table T1(a: int, b: int)
  table T2(b: int, c: int)
  table T3(c: int, d: int)
}
program JoinApp on JoinDB {
  query lookup(x: int) {
    select T1.a, T3.d from T1 join T2 join T3 where a = x;
  }
  query fullJoin(x: int) {
    select T1.a, T3.d from T1 join T2 join T3 where d >= x;
  }
}
)";
}

JoinEngineRow runJoinEngine(bool Indexed, unsigned NumRows,
                            unsigned NumQueries) {
  auto Parsed = parseUnit(joinWorkloadSource());
  const ParseOutput &PO = std::get<ParseOutput>(Parsed);
  const Schema &S = *PO.findSchema("JoinDB");
  const Program &P = PO.findProgram("JoinApp")->Prog;

  setEvalIndexEnabled(Indexed);
  Evaluator Eval(S);
  Database DB(S);
  for (unsigned I = 0; I < NumRows; ++I) {
    DB.getTable("T1").insertRow({Value::makeInt(I), Value::makeInt(I)});
    DB.getTable("T2").insertRow({Value::makeInt(I), Value::makeInt(I)});
    DB.getTable("T3").insertRow({Value::makeInt(I), Value::makeInt(I)});
  }

  obs::MetricsSnapshot Before = obs::registry().snapshot();
  Timer Clock;
  uint64_t Rows = 0;
  for (unsigned Q = 0; Q < NumQueries; ++Q) {
    const Function &F =
        P.getFunction(Q % 4 == 0 ? "fullJoin" : "lookup");
    std::optional<ResultTable> R = Eval.callQuery(
        F, {Value::makeInt(static_cast<int64_t>(Q % NumRows))}, DB);
    if (!R) {
      std::fprintf(stderr, "error: join workload query failed\n");
      std::exit(1);
    }
    Rows += R->Rows.size();
  }
  JoinEngineRow Row;
  Row.Indexed = Indexed;
  Row.WallSec = Clock.elapsedSeconds();
  obs::MetricsSnapshot Delta = obs::registry().snapshot() - Before;
  Row.TuplesScanned = Delta.Counters["eval.tuples_scanned"];
  Row.IndexProbes = Delta.Counters["eval.index_probes"];
  Row.IndexBuilds = Delta.Counters["eval.index_builds"];
  Row.PlanCompiles = Delta.Counters["eval.plan_compiles"];
  Row.PlanCacheHits = Delta.Counters["plan.cache_hits"];
  Row.JoinRows = Rows;
  setEvalIndexEnabled(true);

  std::printf("  join-engine    indexed=%-3s wall=%.3fs tuples=%llu "
              "probes=%llu plan_hits=%llu rows=%llu\n",
              Indexed ? "on" : "off", Row.WallSec,
              static_cast<unsigned long long>(Row.TuplesScanned),
              static_cast<unsigned long long>(Row.IndexProbes),
              static_cast<unsigned long long>(Row.PlanCacheHits),
              static_cast<unsigned long long>(Row.JoinRows));
  std::fflush(stdout);
  return Row;
}

//===----------------------------------------------------------------------===//
// State-engine ablation: COW snapshots x failure corpus
//===----------------------------------------------------------------------===//

/// Resets the kernel's peak-RSS water mark for this process so each
/// configuration reports its own peak, not the run's running maximum.
/// Best-effort: silently a no-op where /proc/self/clear_refs is absent.
/// Freed-but-resident heap from earlier configurations would floor the
/// post-reset high-water mark, so give it back to the kernel first.
void resetPeakRss() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  std::ofstream F("/proc/self/clear_refs");
  if (F)
    F << "5";
}

/// Current peak RSS (VmHWM) in KiB, or 0 when /proc is unavailable.
uint64_t peakRssKb() {
  std::ifstream F("/proc/self/status");
  std::string Line;
  while (std::getline(F, Line))
    if (Line.rfind("VmHWM:", 0) == 0)
      return std::strtoull(Line.c_str() + 6, nullptr, 10);
  return 0;
}

/// FNV-1a over the synthesized program text: enough to assert that every
/// state-engine configuration produced byte-identical output.
std::string progHash(const SynthResult &R) {
  if (!R.succeeded())
    return "-";
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : R.Prog->str()) {
    H ^= C;
    H *= 1099511628211ull;
  }
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// One run of one benchmark under one state-engine configuration.
struct StateEngineRow {
  std::string Bench;
  bool Cow = true;
  bool Corpus = true;
  bool Ok = false;
  double WallSec = 0;
  uint64_t Iters = 0;
  uint64_t SeqsRun = 0;
  uint64_t PeakRssKb = 0;
  uint64_t CowShares = 0;
  uint64_t CowClones = 0;
  uint64_t CorpusReplays = 0;
  uint64_t CorpusKills = 0;
  std::string ProgHash;

  std::string json() const {
    std::ostringstream O;
    O << "{\"benchmark\": " << obs::jsonString(Bench)
      << ", \"cow\": " << (Cow ? "true" : "false")
      << ", \"corpus\": " << (Corpus ? "true" : "false")
      << ", \"ok\": " << (Ok ? "true" : "false")
      << ", \"wall_sec\": " << obs::jsonNumber(WallSec)
      << ", \"iters\": " << Iters << ", \"sequences_run\": " << SeqsRun
      << ", \"peak_rss_kb\": " << PeakRssKb
      << ", \"cow_shares\": " << CowShares
      << ", \"cow_clones\": " << CowClones
      << ", \"corpus_replays\": " << CorpusReplays
      << ", \"corpus_kills\": " << CorpusKills
      << ", \"prog_hash\": " << obs::jsonString(ProgHash) << "}";
    return O.str();
  }
};

StateEngineRow runStateEngine(const Benchmark &B, bool Cow, bool Corpus) {
  SynthOptions Opts;
  Opts.Solver.BiasFirstAlternatives = false; // Stress: testing dominates.
  Opts.Deterministic = true;
  Opts.Solver.UseFailureCorpus = Corpus;
  Opts.TimeBudgetSec = budgetFor(B);

  setTableCowEnabled(Cow);
  resetPeakRss();
  Timer Clock;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
  double Wall = Clock.elapsedSeconds();
  uint64_t Rss = peakRssKb();
  setTableCowEnabled(true);

  StateEngineRow Row;
  Row.Bench = B.Name;
  Row.Cow = Cow;
  Row.Corpus = Corpus;
  Row.Ok = R.succeeded();
  Row.WallSec = Wall;
  Row.Iters = R.Stats.Iters;
  Row.SeqsRun = counterOf(R, "tester.sequences_run");
  Row.PeakRssKb = Rss;
  Row.CowShares = counterOf(R, "table.cow_shares");
  Row.CowClones = counterOf(R, "table.cow_clones");
  Row.CorpusReplays = counterOf(R, "tester.corpus_replays");
  Row.CorpusKills = counterOf(R, "tester.corpus_kills");
  Row.ProgHash = progHash(R);
  std::printf("  %-16s cow=%-3s corpus=%-3s %-4s wall=%.2fs iters=%llu "
              "seqs=%llu rss=%lluKB clones=%llu kills=%llu hash=%s\n",
              B.Name.c_str(), Cow ? "on" : "off", Corpus ? "on" : "off",
              Row.Ok ? "ok" : "FAIL", Row.WallSec,
              static_cast<unsigned long long>(Row.Iters),
              static_cast<unsigned long long>(Row.SeqsRun),
              static_cast<unsigned long long>(Row.PeakRssKb),
              static_cast<unsigned long long>(Row.CowClones),
              static_cast<unsigned long long>(Row.CorpusKills),
              Row.ProgHash.c_str());
  std::fflush(stdout);
  return Row;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_PR5.json";
  obs::setMetricsEnabled(true);

  std::vector<std::string> Names = {"Ambler-8", "coachup", "MathHotSpot"};
  if (const char *Env = std::getenv("MIGRATOR_SWEEP_BENCHMARKS")) {
    Names.clear();
    std::string S = Env, Tok;
    std::istringstream In(S);
    while (std::getline(In, Tok, ','))
      if (!Tok.empty())
        Names.push_back(Tok);
  }

  std::printf("Parallel engine sweep (bias off, deterministic) -> %s\n",
              OutPath);
  std::vector<SweepRow> Rows;
  for (const std::string &Name : Names) {
    Benchmark B = loadBenchmark(Name);
    for (unsigned Jobs : {1u, 2u, 4u})
      Rows.push_back(runOne(B, Jobs, /*Batch=*/Jobs == 1 ? 1 : 4,
                            /*UseCache=*/true));
    // Cache ablation at jobs=1: hardware-independent work reduction.
    Rows.push_back(runOne(B, /*Jobs=*/1, /*Batch=*/1, /*UseCache=*/false));
  }

  // Join-engine ablation: the same eval-dominated workload with indexes on
  // and off; the tuples_scanned ratio is hardware-independent.
  std::printf("Join engine ablation (3-table chain, 400 rows/table)\n");
  std::vector<JoinEngineRow> JoinRows;
  JoinRows.push_back(runJoinEngine(/*Indexed=*/true, /*NumRows=*/400,
                                   /*NumQueries=*/400));
  JoinRows.push_back(runJoinEngine(/*Indexed=*/false, /*NumRows=*/400,
                                   /*NumQueries=*/400));
  if (JoinRows[0].TuplesScanned > 0)
    std::printf("  tuples_scanned ratio (naive/indexed): %.1fx\n",
                static_cast<double>(JoinRows[1].TuplesScanned) /
                    static_cast<double>(JoinRows[0].TuplesScanned));

  // State-engine ablation: COW on/off x corpus on/off at jobs=1. The
  // synthesized program must be identical in all four configurations.
  std::printf("State engine ablation (jobs=1, bias off, deterministic)\n");
  std::vector<StateEngineRow> StateRows;
  for (const std::string &Name : Names) {
    Benchmark B = loadBenchmark(Name);
    std::string Hash;
    for (bool Cow : {true, false})
      for (bool Corpus : {true, false}) {
        StateRows.push_back(runStateEngine(B, Cow, Corpus));
        const StateEngineRow &Row = StateRows.back();
        if (Hash.empty())
          Hash = Row.ProgHash;
        else if (Row.Ok && Row.ProgHash != Hash)
          std::printf("  WARNING: %s produced a different program under "
                      "cow=%d corpus=%d\n",
                      Name.c_str(), Row.Cow, Row.Corpus);
      }
  }

  std::ostringstream Out;
  Out << "{\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"join_engine\": [\n";
  for (size_t I = 0; I < JoinRows.size(); ++I)
    Out << "    " << JoinRows[I].json()
        << (I + 1 < JoinRows.size() ? ",\n" : "\n");
  Out << "  ],\n  \"state_engine\": [\n";
  for (size_t I = 0; I < StateRows.size(); ++I)
    Out << "    " << StateRows[I].json()
        << (I + 1 < StateRows.size() ? ",\n" : "\n");
  Out << "  ],\n  \"results\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I)
    Out << "    " << Rows[I].json() << (I + 1 < Rows.size() ? ",\n" : "\n");
  Out << "  ]\n}\n";

  std::string Doc = Out.str();
  std::string Err;
  if (!obs::validateJson(Doc, &Err)) {
    std::fprintf(stderr, "internal error: emitted invalid JSON: %s\n",
                 Err.c_str());
    return 1;
  }
  std::ofstream F(OutPath);
  if (!F) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath);
    return 1;
  }
  F << Doc;
  std::printf("wrote %s (%zu rows)\n", OutPath, Rows.size());
  return 0;
}
