//===- bench/bench_sweep.cpp - Engine sweep (BENCH_PR10.json) ---------------===//
//
// Measures the parallel synthesis engine, the indexed join engine, the
// copy-on-write state engine, and the incremental SAT engine
// (docs/PERFORMANCE.md) and emits a machine-readable report:
//
//  * per benchmark, wall-clock at jobs = 1, 2, and 4 (batch 4,
//    deterministic, the production rank-order enumeration — candidate
//    testing still dominates), plus a source-cache on/off pair at jobs = 1
//    (the cache forced on for its rows — by default synthesize() only
//    attaches it in parallel mode);
//  * an eval-dominated three-table-join workload evaluated with the indexed
//    engine and with the naive nested-loop oracle (MIGRATOR_NO_INDEX
//    semantics), reporting wall-clock and the eval.tuples_scanned /
//    eval.index_probes counters — the index speedup in isolation;
//  * the state-engine ablation: each benchmark synthesized at jobs = 1
//    under COW on/off x failure-corpus on/off, reporting wall-clock,
//    peak RSS (reset per configuration via /proc/self/clear_refs), the
//    table.cow_shares / table.cow_clones and tester.corpus_* counters, and
//    a hash of the synthesized program — identical across all four
//    configurations by construction.
//
//  * a contention section: each benchmark re-run at the sweep's widest
//    jobs setting with lock profiling on, reporting per-site acquisition/
//    contended counts, total wait/hold nanoseconds, and wait p50/p95 —
//    which named lock the workers actually serialized on. The striped
//    source cache reports per-stripe sites (src_cache.s0..s15); this
//    section additionally emits a synthetic summed `src_cache` row so the
//    ledger stays comparable across the PR 8 resharding;
//  * a scaling section (PR 8): each benchmark synthesized at jobs in
//    {1, 2, 4, 8} (thread counts beyond what the host can actually run in
//    parallel are dropped), recording wall-clock, speedup and per-thread
//    efficiency relative to jobs=1, the pool's task/steal counters, and
//    the FNV-1a program hash — which must be identical at every thread
//    count (deterministic mode). On a host that cannot run the full curve
//    the section carries a machine-readable `skipped: true` marker plus a
//    `skip_reason`, and the truncated rows still gate "more threads must
//    not be slower" via scripts/bench_diff.py;
//  * a solver section (PR 10): the persistent incremental SAT engine vs
//    the scratch-per-encoding oracle, per benchmark in two modes —
//    `pipeline` (the production configuration run to completion; the
//    synthesized-program hash must be identical across engines) and
//    `enum` (reverse-rank enumerative stress under a fixed budget; both
//    engines draw the same canonical model sequence, so sat_call_us_total
//    at the reported call count compares the SAT loop itself);
//  * a meta block (git SHA, compiler, build type, nproc, CPU model,
//    timestamp) so every BENCH_*.json in the ledger is attributable to a
//    revision and a host. When the scheduler affinity mask (nproc)
//    disagrees with hardware_concurrency — a constrained container — the
//    sweep *runs anyway* and self-labels: both numbers land in the meta
//    block and the scaling section's skip marker reflects the effective
//    (smaller) core count. MIGRATOR_SWEEP_IGNORE_NPROC=1 silences the
//    warning; it is no longer required to run.
//
// Usage: bench_sweep [output.json]     (default BENCH_PR10.json)
//
// Environment: MIGRATOR_BENCH_BUDGET caps the per-run budget (seconds);
// MIGRATOR_SWEEP_BENCHMARKS is a comma-separated benchmark-name override;
// MIGRATOR_SWEEP_QUICK=1 shrinks the sweep (jobs <= 2, smaller join
// workload, 3s default budget) for CI smoke use — quick numbers are for
// schema checks (scripts/bench_diff.py self-comparison), not the ledger.
//
// The report records the host's hardware concurrency: thread-scaling
// numbers are only meaningful when the host actually has the cores (see
// EXPERIMENTS.md for the single-core caveat); the cache on/off delta and
// the hit counters are hardware-independent.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "eval/Evaluator.h"
#include "eval/Plan.h"
#include "obs/Json.h"
#include "obs/LockProfile.h"
#include "obs/Metrics.h"
#include "parse/Parser.h"
#include "relational/Table.h"
#include "sat/Solver.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#if defined(__linux__)
#include <sched.h>
#endif
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

using namespace migrator;
using namespace migrator::bench;

namespace {

bool quickMode() {
  const char *E = std::getenv("MIGRATOR_SWEEP_QUICK");
  return E && *E && std::string_view(E) != "0";
}

uint64_t counterOf(const SynthResult &R, const char *Name) {
  auto It = R.Metrics.Counters.find(Name);
  return It == R.Metrics.Counters.end() ? 0 : It->second;
}

struct SweepRow {
  std::string Bench;
  unsigned Jobs = 1;
  unsigned Batch = 1;
  bool SrcCache = true;
  bool Ok = false;
  double WallSec = 0;
  uint64_t Iters = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t PoolTasks = 0;
  uint64_t PoolSteals = 0;
  uint64_t SeqsRun = 0;

  std::string json() const {
    std::ostringstream O;
    O << "{\"benchmark\": " << obs::jsonString(Bench)
      << ", \"jobs\": " << Jobs << ", \"batch\": " << Batch
      << ", \"src_cache\": " << (SrcCache ? "true" : "false")
      << ", \"ok\": " << (Ok ? "true" : "false")
      << ", \"wall_sec\": " << obs::jsonNumber(WallSec)
      << ", \"iters\": " << Iters << ", \"src_cache_hits\": " << CacheHits
      << ", \"src_cache_misses\": " << CacheMisses
      << ", \"pool_tasks\": " << PoolTasks
      << ", \"pool_steals\": " << PoolSteals
      << ", \"sequences_run\": " << SeqsRun << "}";
    return O.str();
  }
};

SweepRow runOne(const Benchmark &B, unsigned Jobs, unsigned Batch,
                bool UseCache) {
  // Production configuration (rank-order canonical enumeration). Candidate
  // testing still dominates — on coachup the winning candidate alone costs
  // ~1M bounded-testing sequences — so these rows measure the engine users
  // actually run, not a solver microbenchmark.
  SynthOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Solver.Batch = Batch;
  Opts.Deterministic = true;
  Opts.UseSourceCache = UseCache;
  Opts.SourceCacheMinJobs = 1; // These rows measure the cache itself.
  Opts.TimeBudgetSec = budgetFor(B);

  Timer Clock;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);

  SweepRow Row;
  Row.Bench = B.Name;
  Row.Jobs = Jobs;
  Row.Batch = Batch;
  Row.SrcCache = UseCache;
  Row.Ok = R.succeeded();
  Row.WallSec = Clock.elapsedSeconds();
  Row.Iters = R.Stats.Iters;
  Row.CacheHits = counterOf(R, "tester.src_cache_hits");
  Row.CacheMisses = counterOf(R, "tester.src_cache_misses");
  Row.PoolTasks = counterOf(R, "pool.tasks");
  Row.PoolSteals = counterOf(R, "pool.steals");
  Row.SeqsRun = counterOf(R, "tester.sequences_run");
  std::printf("  %-16s jobs=%u batch=%u cache=%-3s %-4s wall=%.2fs "
              "iters=%llu hits=%llu misses=%llu tasks=%llu steals=%llu\n",
              B.Name.c_str(), Jobs, Batch, UseCache ? "on" : "off",
              Row.Ok ? "ok" : "FAIL", Row.WallSec,
              static_cast<unsigned long long>(Row.Iters),
              static_cast<unsigned long long>(Row.CacheHits),
              static_cast<unsigned long long>(Row.CacheMisses),
              static_cast<unsigned long long>(Row.PoolTasks),
              static_cast<unsigned long long>(Row.PoolSteals));
  std::fflush(stdout);
  return Row;
}

//===----------------------------------------------------------------------===//
// Join-engine workload: indexed engine vs naive oracle
//===----------------------------------------------------------------------===//

/// One run of the eval-dominated join workload under one engine.
struct JoinEngineRow {
  bool Indexed = false;
  double WallSec = 0;
  uint64_t TuplesScanned = 0;
  uint64_t IndexProbes = 0;
  uint64_t IndexBuilds = 0;
  uint64_t PlanCompiles = 0;
  uint64_t PlanCacheHits = 0;
  uint64_t JoinRows = 0;

  std::string json() const {
    std::ostringstream O;
    O << "{\"indexed\": " << (Indexed ? "true" : "false")
      << ", \"wall_sec\": " << obs::jsonNumber(WallSec)
      << ", \"tuples_scanned\": " << TuplesScanned
      << ", \"index_probes\": " << IndexProbes
      << ", \"index_builds\": " << IndexBuilds
      << ", \"plan_compiles\": " << PlanCompiles
      << ", \"plan_cache_hits\": " << PlanCacheHits
      << ", \"join_rows\": " << JoinRows << "}";
    return O.str();
  }
};

/// A three-table key-linked chain: every T1 row joins exactly one T2 and one
/// T3 row, so the naive engine's middle levels scan the full inner tables
/// while the indexed engine reaches them by single-bucket probes.
const char *joinWorkloadSource() {
  return R"(
schema JoinDB {
  table T1(a: int, b: int)
  table T2(b: int, c: int)
  table T3(c: int, d: int)
}
program JoinApp on JoinDB {
  query lookup(x: int) {
    select T1.a, T3.d from T1 join T2 join T3 where a = x;
  }
  query fullJoin(x: int) {
    select T1.a, T3.d from T1 join T2 join T3 where d >= x;
  }
}
)";
}

JoinEngineRow runJoinEngine(bool Indexed, unsigned NumRows,
                            unsigned NumQueries) {
  auto Parsed = parseUnit(joinWorkloadSource());
  const ParseOutput &PO = std::get<ParseOutput>(Parsed);
  const Schema &S = *PO.findSchema("JoinDB");
  const Program &P = PO.findProgram("JoinApp")->Prog;

  setEvalIndexEnabled(Indexed);
  Evaluator Eval(S);
  Database DB(S);
  for (unsigned I = 0; I < NumRows; ++I) {
    DB.getTable("T1").insertRow({Value::makeInt(I), Value::makeInt(I)});
    DB.getTable("T2").insertRow({Value::makeInt(I), Value::makeInt(I)});
    DB.getTable("T3").insertRow({Value::makeInt(I), Value::makeInt(I)});
  }

  obs::MetricsSnapshot Before = obs::registry().snapshot();
  Timer Clock;
  uint64_t Rows = 0;
  for (unsigned Q = 0; Q < NumQueries; ++Q) {
    const Function &F =
        P.getFunction(Q % 4 == 0 ? "fullJoin" : "lookup");
    std::optional<ResultTable> R = Eval.callQuery(
        F, {Value::makeInt(static_cast<int64_t>(Q % NumRows))}, DB);
    if (!R) {
      std::fprintf(stderr, "error: join workload query failed\n");
      std::exit(1);
    }
    Rows += R->Rows.size();
  }
  JoinEngineRow Row;
  Row.Indexed = Indexed;
  Row.WallSec = Clock.elapsedSeconds();
  obs::MetricsSnapshot Delta = obs::registry().snapshot() - Before;
  Row.TuplesScanned = Delta.Counters["eval.tuples_scanned"];
  Row.IndexProbes = Delta.Counters["eval.index_probes"];
  Row.IndexBuilds = Delta.Counters["eval.index_builds"];
  Row.PlanCompiles = Delta.Counters["eval.plan_compiles"];
  Row.PlanCacheHits = Delta.Counters["plan.cache_hits"];
  Row.JoinRows = Rows;
  setEvalIndexEnabled(true);

  std::printf("  join-engine    indexed=%-3s wall=%.3fs tuples=%llu "
              "probes=%llu plan_hits=%llu rows=%llu\n",
              Indexed ? "on" : "off", Row.WallSec,
              static_cast<unsigned long long>(Row.TuplesScanned),
              static_cast<unsigned long long>(Row.IndexProbes),
              static_cast<unsigned long long>(Row.PlanCacheHits),
              static_cast<unsigned long long>(Row.JoinRows));
  std::fflush(stdout);
  return Row;
}

//===----------------------------------------------------------------------===//
// State-engine ablation: COW snapshots x failure corpus
//===----------------------------------------------------------------------===//

/// Resets the kernel's peak-RSS water mark for this process so each
/// configuration reports its own peak, not the run's running maximum.
/// Best-effort: silently a no-op where /proc/self/clear_refs is absent.
/// Freed-but-resident heap from earlier configurations would floor the
/// post-reset high-water mark, so give it back to the kernel first.
void resetPeakRss() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  std::ofstream F("/proc/self/clear_refs");
  if (F)
    F << "5";
}

/// Current peak RSS (VmHWM) in KiB, or 0 when /proc is unavailable.
uint64_t peakRssKb() {
  std::ifstream F("/proc/self/status");
  std::string Line;
  while (std::getline(F, Line))
    if (Line.rfind("VmHWM:", 0) == 0)
      return std::strtoull(Line.c_str() + 6, nullptr, 10);
  return 0;
}

/// FNV-1a over the synthesized program text: enough to assert that every
/// state-engine configuration produced byte-identical output.
std::string progHash(const SynthResult &R) {
  if (!R.succeeded())
    return "-";
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : R.Prog->str()) {
    H ^= C;
    H *= 1099511628211ull;
  }
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// One run of one benchmark under one state-engine configuration.
struct StateEngineRow {
  std::string Bench;
  bool Cow = true;
  bool Corpus = true;
  bool Ok = false;
  double WallSec = 0;
  uint64_t Iters = 0;
  uint64_t SeqsRun = 0;
  uint64_t PeakRssKb = 0;
  uint64_t CowShares = 0;
  uint64_t CowClones = 0;
  uint64_t CorpusReplays = 0;
  uint64_t CorpusKills = 0;
  std::string ProgHash;

  std::string json() const {
    std::ostringstream O;
    O << "{\"benchmark\": " << obs::jsonString(Bench)
      << ", \"cow\": " << (Cow ? "true" : "false")
      << ", \"corpus\": " << (Corpus ? "true" : "false")
      << ", \"ok\": " << (Ok ? "true" : "false")
      << ", \"wall_sec\": " << obs::jsonNumber(WallSec)
      << ", \"iters\": " << Iters << ", \"sequences_run\": " << SeqsRun
      << ", \"peak_rss_kb\": " << PeakRssKb
      << ", \"cow_shares\": " << CowShares
      << ", \"cow_clones\": " << CowClones
      << ", \"corpus_replays\": " << CorpusReplays
      << ", \"corpus_kills\": " << CorpusKills
      << ", \"prog_hash\": " << obs::jsonString(ProgHash) << "}";
    return O.str();
  }
};

StateEngineRow runStateEngine(const Benchmark &B, bool Cow, bool Corpus) {
  SynthOptions Opts;
  // Deliberate stress: reverse-rank enumeration forces the tester through
  // dozens of failing candidates, the snapshot/corpus workload this
  // ablation exists to measure (rank order would find coachup's program
  // on the first draw and never exercise the corpus).
  Opts.Solver.BiasFirstAlternatives = false;
  Opts.Deterministic = true;
  Opts.Solver.UseFailureCorpus = Corpus;
  Opts.TimeBudgetSec = budgetFor(B);

  setTableCowEnabled(Cow);
  resetPeakRss();
  Timer Clock;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
  double Wall = Clock.elapsedSeconds();
  uint64_t Rss = peakRssKb();
  setTableCowEnabled(true);

  StateEngineRow Row;
  Row.Bench = B.Name;
  Row.Cow = Cow;
  Row.Corpus = Corpus;
  Row.Ok = R.succeeded();
  Row.WallSec = Wall;
  Row.Iters = R.Stats.Iters;
  Row.SeqsRun = counterOf(R, "tester.sequences_run");
  Row.PeakRssKb = Rss;
  Row.CowShares = counterOf(R, "table.cow_shares");
  Row.CowClones = counterOf(R, "table.cow_clones");
  Row.CorpusReplays = counterOf(R, "tester.corpus_replays");
  Row.CorpusKills = counterOf(R, "tester.corpus_kills");
  Row.ProgHash = progHash(R);
  std::printf("  %-16s cow=%-3s corpus=%-3s %-4s wall=%.2fs iters=%llu "
              "seqs=%llu rss=%lluKB clones=%llu kills=%llu hash=%s\n",
              B.Name.c_str(), Cow ? "on" : "off", Corpus ? "on" : "off",
              Row.Ok ? "ok" : "FAIL", Row.WallSec,
              static_cast<unsigned long long>(Row.Iters),
              static_cast<unsigned long long>(Row.SeqsRun),
              static_cast<unsigned long long>(Row.PeakRssKb),
              static_cast<unsigned long long>(Row.CowClones),
              static_cast<unsigned long long>(Row.CorpusKills),
              Row.ProgHash.c_str());
  std::fflush(stdout);
  return Row;
}

//===----------------------------------------------------------------------===//
// Solver-engine workload: incremental assumption solver vs scratch oracle
//===----------------------------------------------------------------------===//

/// One run of one benchmark under one SAT-engine configuration.
///
/// Three modes per benchmark:
///   - "pipeline": the full synthesis pipeline in the production
///     configuration, same options as the `results` rows at jobs=1 — these
///     complete, so `ok`, `wall_sec`, and `prog_hash` carry the end-to-end
///     claims (incremental and scratch must synthesize byte-identical
///     programs, and the incremental wall must hold the ledger line).
///   - "stress": the same MFI search under reverse-rank enumeration — the
///     solver grinds through dozens of failing candidates (and their MFI
///     clauses) before completing, so the cross-engine hash equality here
///     exercises the canonical model order through real conflict traffic.
///   - "enum": the enumerative stress configuration (reverse-rank
///     enumeration, MaxIters bounded per sketch) under a fixed wall
///     budget. The sketch stream is unbounded, so these rows never
///     "complete"; because decisions are in canonical fixed order both
///     engines draw the *same* model sequence and the budget merely
///     truncates it — sat_call_us_total at the reported call count is the
///     SAT-loop cost comparison.
struct SolverEngineRow {
  std::string Bench;
  std::string Mode; // "pipeline" | "stress" | "enum"
  bool Incremental = true;
  bool Ok = false;
  double WallSec = 0;
  uint64_t SatCalls = 0;
  uint64_t Conflicts = 0;
  uint64_t SatCallUsTotal = 0;
  uint64_t AssumptionCalls = 0;
  uint64_t ReduceDbs = 0;
  uint64_t DeletedClauses = 0;
  uint64_t PeakRssKb = 0;
  std::string ProgHash;

  std::string json() const {
    std::ostringstream O;
    O << "{\"benchmark\": " << obs::jsonString(Bench)
      << ", \"mode\": " << obs::jsonString(Mode)
      << ", \"incremental\": " << (Incremental ? "true" : "false")
      << ", \"ok\": " << (Ok ? "true" : "false")
      << ", \"wall_sec\": " << obs::jsonNumber(WallSec)
      << ", \"sat_calls\": " << SatCalls << ", \"conflicts\": " << Conflicts
      << ", \"sat_call_us_total\": " << SatCallUsTotal
      << ", \"assumption_calls\": " << AssumptionCalls
      << ", \"reduce_dbs\": " << ReduceDbs
      << ", \"deleted_clauses\": " << DeletedClauses
      << ", \"peak_rss_kb\": " << PeakRssKb
      << ", \"prog_hash\": " << obs::jsonString(ProgHash) << "}";
    return O.str();
  }
};

SolverEngineRow runSolverEngine(const Benchmark &B, const std::string &Mode,
                                bool Incremental) {
  SynthOptions Opts;
  // "stress" and "enum" grind the SAT loop with reverse-rank enumeration;
  // "pipeline" keeps the production rank order so it matches the `results`
  // rows.
  Opts.Solver.BiasFirstAlternatives = Mode == "pipeline";
  Opts.Deterministic = true;
  if (Mode == "enum") {
    Opts.Solver.TheMode = SolverOptions::Mode::Enumerative;
    Opts.Solver.MaxIters = 200;
    Opts.TimeBudgetSec = std::min(60.0, budgetFor(B));
  } else {
    // Mirror runOne's jobs=1 configuration so wall_sec is comparable to the
    // `results` rows of earlier ledger entries.
    Opts.UseSourceCache = true;
    Opts.SourceCacheMinJobs = 1;
    Opts.TimeBudgetSec = budgetFor(B);
  }

  const bool Saved = sat::satIncrementalEnabled();
  sat::setSatIncrementalEnabled(Incremental);
  resetPeakRss();
  Timer Clock;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
  double Wall = Clock.elapsedSeconds();
  uint64_t Rss = peakRssKb();
  sat::setSatIncrementalEnabled(Saved);

  SolverEngineRow Row;
  Row.Bench = B.Name;
  Row.Mode = Mode;
  Row.Incremental = Incremental;
  Row.Ok = R.succeeded();
  Row.WallSec = Wall;
  Row.SatCalls = counterOf(R, "solver.sat_calls");
  Row.Conflicts = counterOf(R, "solver.sat_conflicts");
  auto HistIt = R.Metrics.Histograms.find("solver.sat_call_us");
  Row.SatCallUsTotal =
      HistIt == R.Metrics.Histograms.end() ? 0 : HistIt->second.Sum;
  Row.AssumptionCalls = counterOf(R, "sat.assumption_calls");
  Row.ReduceDbs = counterOf(R, "sat.reduce_dbs");
  Row.DeletedClauses = counterOf(R, "sat.deleted_clauses");
  Row.PeakRssKb = Rss;
  Row.ProgHash = progHash(R);
  std::printf("  %-16s %-8s inc=%-3s %-4s wall=%.2fs sat_us=%llu "
              "calls=%llu conf=%llu del=%llu rss=%lluKB hash=%s\n",
              B.Name.c_str(), Row.Mode.c_str(), Incremental ? "on" : "off",
              Row.Ok ? "ok" : "FAIL", Row.WallSec,
              static_cast<unsigned long long>(Row.SatCallUsTotal),
              static_cast<unsigned long long>(Row.SatCalls),
              static_cast<unsigned long long>(Row.Conflicts),
              static_cast<unsigned long long>(Row.DeletedClauses),
              static_cast<unsigned long long>(Row.PeakRssKb),
              Row.ProgHash.c_str());
  std::fflush(stdout);
  return Row;
}

//===----------------------------------------------------------------------===//
// Meta block: what machine, what revision, what compiler
//===----------------------------------------------------------------------===//

/// First line of `Cmd`'s stdout, or "" on any failure.
std::string commandLine(const char *Cmd) {
  std::string Out;
  if (FILE *P = popen(Cmd, "r")) {
    char Buf[256];
    if (std::fgets(Buf, sizeof(Buf), P))
      Out = Buf;
    pclose(P);
  }
  while (!Out.empty() && (Out.back() == '\n' || Out.back() == '\r'))
    Out.pop_back();
  return Out;
}

/// The CPUs this process may actually run on — `nproc` semantics, which a
/// container or taskset can shrink below the machine's core count.
unsigned affinityNproc() {
#if defined(__linux__)
  cpu_set_t Set;
  if (sched_getaffinity(0, sizeof(Set), &Set) == 0)
    return static_cast<unsigned>(CPU_COUNT(&Set));
#endif
  return std::thread::hardware_concurrency();
}

std::string cpuModel() {
#if defined(__linux__)
  std::ifstream F("/proc/cpuinfo");
  std::string Line;
  while (std::getline(F, Line))
    if (Line.rfind("model name", 0) == 0) {
      size_t Colon = Line.find(':');
      if (Colon != std::string::npos) {
        size_t Start = Line.find_first_not_of(" \t", Colon + 1);
        return Start == std::string::npos ? "" : Line.substr(Start);
      }
    }
#endif
  return "";
}

std::string utcTimestamp() {
  std::time_t Now = std::time(nullptr);
  char Buf[32];
  std::tm Tm;
  if (!gmtime_r(&Now, &Tm) ||
      std::strftime(Buf, sizeof(Buf), "%Y-%m-%dT%H:%M:%SZ", &Tm) == 0)
    return "";
  return Buf;
}

std::string metaJson(bool Quick) {
  unsigned Nproc = affinityNproc();
  unsigned Hw = std::thread::hardware_concurrency();
  std::ostringstream O;
  O << "{\n    \"git_sha\": "
    << obs::jsonString(commandLine("git rev-parse HEAD 2>/dev/null"))
    << ",\n    \"compiler\": " << obs::jsonString(__VERSION__)
    << ",\n    \"build\": "
    // The project strips -DNDEBUG from Release (asserts stay on), so key
    // on optimization instead: __OPTIMIZE__ is defined at -O1 and above.
#if defined(NDEBUG) || defined(__OPTIMIZE__)
    << "\"optimized\""
#else
    << "\"debug\""
#endif
    << ",\n    \"nproc\": " << Nproc
    << ",\n    \"hardware_concurrency\": " << Hw
    << ",\n    \"cpu_model\": " << obs::jsonString(cpuModel())
    << ",\n    \"timestamp_utc\": " << obs::jsonString(utcTimestamp())
    << ",\n    \"quick\": " << (Quick ? "true" : "false") << "\n  }";
  return O.str();
}

/// The cores this run can actually exercise in parallel: the smaller of
/// the affinity mask and the machine's core count. Everything that labels
/// or truncates the scaling sweep keys off this one number.
unsigned effectiveCores() {
  unsigned Nproc = affinityNproc();
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    return Nproc ? Nproc : 1;
  return std::min(Nproc ? Nproc : Hw, Hw);
}

/// A sweep on a host whose affinity mask hides cores used to refuse to run
/// outright; since PR 8 the report is *self-labeling* — meta records both
/// nproc and hardware_concurrency, and the scaling section carries a skip
/// marker sized to the effective core count — so the sweep just warns.
/// MIGRATOR_SWEEP_IGNORE_NPROC=1 silences the warning (kept for script
/// compatibility; it no longer changes behaviour).
void checkNprocAgreement() {
  unsigned Nproc = affinityNproc();
  unsigned Hw = std::thread::hardware_concurrency();
  if (Nproc == Hw || Hw == 0)
    return;
  const char *Ignore = std::getenv("MIGRATOR_SWEEP_IGNORE_NPROC");
  if (Ignore && *Ignore && std::string_view(Ignore) != "0")
    return;
  std::fprintf(stderr,
               "warning: scheduler affinity grants %u CPU(s) but the machine "
               "reports %u — thread-scaling rows will be labeled with the "
               "effective core count (%u) and the scaling section marked "
               "accordingly.\n",
               Nproc, Hw, effectiveCores());
}

//===----------------------------------------------------------------------===//
// Contention pass: which lock serialized the workers
//===----------------------------------------------------------------------===//

/// One lock site's statistics from one benchmark's profiled parallel run.
struct ContentionRow {
  std::string Bench;
  unsigned Jobs = 0;
  std::string Site;
  uint64_t Acquisitions = 0;
  uint64_t Contended = 0;
  uint64_t WaitNs = 0;
  uint64_t HoldNs = 0;
  double WaitUsP50 = 0;
  double WaitUsP95 = 0;

  std::string json() const {
    std::ostringstream O;
    O << "{\"benchmark\": " << obs::jsonString(Bench)
      << ", \"jobs\": " << Jobs << ", \"site\": " << obs::jsonString(Site)
      << ", \"acquisitions\": " << Acquisitions
      << ", \"contended\": " << Contended << ", \"wait_ns\": " << WaitNs
      << ", \"hold_ns\": " << HoldNs
      << ", \"wait_us_p50\": " << obs::jsonNumber(WaitUsP50)
      << ", \"wait_us_p95\": " << obs::jsonNumber(WaitUsP95) << "}";
    return O.str();
  }
};

/// Re-runs \p B at \p Jobs with lock profiling on and reports every touched
/// site, ranked by total wait. Kept out of the timing rows above: the
/// enabled profiler adds clock reads to every lock operation.
std::vector<ContentionRow> runContention(const Benchmark &B, unsigned Jobs) {
  SynthOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Solver.Batch = 4;
  Opts.Deterministic = true;
  Opts.TimeBudgetSec = budgetFor(B);

  obs::resetLockProfile();
  obs::setLockProfilingEnabled(true);
  synthesize(B.Source, B.Prog, B.Target, Opts);
  obs::setLockProfilingEnabled(false);

  std::vector<ContentionRow> Rows;
  // The striped source cache reports one site per stripe (src_cache.s0..).
  // Ledger baselines predate the resharding and key contention rows by
  // (benchmark, jobs, site), so alongside the per-stripe rows emit one
  // synthetic `src_cache` row summing the counts across stripes; its
  // percentiles are the worst stripe's (an upper bound — per-stripe
  // percentiles cannot be merged exactly).
  ContentionRow Agg;
  Agg.Bench = B.Name;
  Agg.Jobs = Jobs;
  Agg.Site = "src_cache";
  bool SawStripe = false;
  for (const obs::LockSiteSnapshot &S : obs::lockProfileSnapshot()) {
    ContentionRow Row;
    Row.Bench = B.Name;
    Row.Jobs = Jobs;
    Row.Site = S.Name;
    Row.Acquisitions = S.Acquisitions;
    Row.Contended = S.Contended;
    Row.WaitNs = S.WaitNs;
    Row.HoldNs = S.HoldNs;
    Row.WaitUsP50 = S.WaitUs.percentile(0.50);
    Row.WaitUsP95 = S.WaitUs.percentile(0.95);
    if (Row.Site.rfind("src_cache.s", 0) == 0) {
      SawStripe = true;
      Agg.Acquisitions += Row.Acquisitions;
      Agg.Contended += Row.Contended;
      Agg.WaitNs += Row.WaitNs;
      Agg.HoldNs += Row.HoldNs;
      Agg.WaitUsP50 = std::max(Agg.WaitUsP50, Row.WaitUsP50);
      Agg.WaitUsP95 = std::max(Agg.WaitUsP95, Row.WaitUsP95);
    }
    std::printf("  %-16s jobs=%u %-14s acq=%llu contended=%llu "
                "wait=%.2fms hold=%.2fms\n",
                B.Name.c_str(), Jobs, Row.Site.c_str(),
                static_cast<unsigned long long>(Row.Acquisitions),
                static_cast<unsigned long long>(Row.Contended),
                static_cast<double>(Row.WaitNs) / 1e6,
                static_cast<double>(Row.HoldNs) / 1e6);
    Rows.push_back(std::move(Row));
  }
  if (SawStripe) {
    std::printf("  %-16s jobs=%u %-14s acq=%llu contended=%llu "
                "wait=%.2fms hold=%.2fms  (summed over stripes)\n",
                B.Name.c_str(), Jobs, Agg.Site.c_str(),
                static_cast<unsigned long long>(Agg.Acquisitions),
                static_cast<unsigned long long>(Agg.Contended),
                static_cast<double>(Agg.WaitNs) / 1e6,
                static_cast<double>(Agg.HoldNs) / 1e6);
    Rows.push_back(std::move(Agg));
  }
  std::fflush(stdout);
  obs::resetLockProfile();
  return Rows;
}

//===----------------------------------------------------------------------===//
// Scaling section: the speedup curve (or its honest absence)
//===----------------------------------------------------------------------===//

/// One benchmark at one thread count, under the exact configuration a
/// parallel user would run (default source-cache policy, batch 4,
/// deterministic).
struct ScalingRow {
  std::string Bench;
  unsigned Jobs = 1;
  unsigned Batch = 4;
  bool Ok = false;
  double WallSec = 0;
  double Speedup = 1.0;    ///< wall(jobs=1) / wall(this row).
  double Efficiency = 1.0; ///< Speedup / Jobs — per-thread yield.
  uint64_t PoolTasks = 0;
  uint64_t PoolSteals = 0;
  double StealRate = 0; ///< PoolSteals / PoolTasks.
  std::string ProgHash;

  std::string json() const {
    std::ostringstream O;
    O << "{\"benchmark\": " << obs::jsonString(Bench)
      << ", \"jobs\": " << Jobs << ", \"batch\": " << Batch
      << ", \"ok\": " << (Ok ? "true" : "false")
      << ", \"wall_sec\": " << obs::jsonNumber(WallSec)
      << ", \"speedup\": " << obs::jsonNumber(Speedup)
      << ", \"efficiency\": " << obs::jsonNumber(Efficiency)
      << ", \"pool_tasks\": " << PoolTasks
      << ", \"pool_steals\": " << PoolSteals
      << ", \"steal_rate\": " << obs::jsonNumber(StealRate)
      << ", \"prog_hash\": " << obs::jsonString(ProgHash) << "}";
    return O.str();
  }
};

/// The whole section: swept rows plus the machine-readable skip marker for
/// hosts that cannot run the full {1, 2, 4, 8} curve.
struct ScalingSection {
  bool Skipped = false;
  std::string SkipReason;
  unsigned EffectiveCores = 1;
  std::vector<unsigned> JobsSwept;
  std::vector<ScalingRow> Rows;

  std::string json() const {
    std::ostringstream O;
    O << "{\n    \"skipped\": " << (Skipped ? "true" : "false")
      << ",\n    \"skip_reason\": " << obs::jsonString(SkipReason)
      << ",\n    \"effective_cores\": " << EffectiveCores
      << ",\n    \"jobs_swept\": [";
    for (size_t I = 0; I < JobsSwept.size(); ++I)
      O << JobsSwept[I] << (I + 1 < JobsSwept.size() ? ", " : "");
    O << "],\n    \"rows\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I)
      O << "      " << Rows[I].json() << (I + 1 < Rows.size() ? ",\n" : "\n");
    O << "    ]\n  }";
    return O.str();
  }
};

ScalingRow runScaling(const Benchmark &B, unsigned Jobs) {
  SynthOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Solver.Batch = 4;
  Opts.Deterministic = true;
  // Cache forced on at every thread count: the default SourceCacheMinJobs
  // policy would flip the cache on between jobs=1 and jobs=2, and a
  // scaling curve is only a scaling curve if thread count is the sole
  // variable. (The policy itself is measured by bench_ablation Sec. 8.)
  Opts.UseSourceCache = true;
  Opts.SourceCacheMinJobs = 1;
  Opts.TimeBudgetSec = budgetFor(B);

  Timer Clock;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);

  ScalingRow Row;
  Row.Bench = B.Name;
  Row.Jobs = Jobs;
  Row.Ok = R.succeeded();
  Row.WallSec = Clock.elapsedSeconds();
  Row.PoolTasks = counterOf(R, "pool.tasks");
  Row.PoolSteals = counterOf(R, "pool.steals");
  Row.StealRate = Row.PoolTasks
                      ? static_cast<double>(Row.PoolSteals) /
                            static_cast<double>(Row.PoolTasks)
                      : 0.0;
  Row.ProgHash = progHash(R);
  return Row;
}

/// Runs the weak/strong-scaling sweep. The full curve is jobs in
/// {1, 2, 4, 8}; thread counts the host cannot run in parallel are dropped
/// (always keeping jobs=2, so every report — including single-core hosts —
/// gates "adding a thread must not cost wall-clock"), and any truncation
/// sets the skip marker bench_diff.py keys on.
ScalingSection runScalingSweep(const std::vector<std::string> &Names,
                               bool Quick) {
  ScalingSection Sec;
  Sec.EffectiveCores = effectiveCores();
  const std::vector<unsigned> FullCurve = {1u, 2u, 4u, 8u};
  for (unsigned J : FullCurve)
    if (J <= std::max(2u, Quick ? 2u : Sec.EffectiveCores))
      Sec.JobsSwept.push_back(J);
  if (Sec.JobsSwept.size() < FullCurve.size()) {
    Sec.Skipped = true;
    std::ostringstream R;
    if (Quick && Sec.EffectiveCores >= 4)
      R << "quick mode: sweep truncated to jobs<=2";
    else
      R << "host has " << Sec.EffectiveCores << " effective core(s) (nproc="
        << affinityNproc()
        << ", hardware_concurrency=" << std::thread::hardware_concurrency()
        << "); speedup curve beyond jobs=2 not measurable";
    Sec.SkipReason = R.str();
  }

  std::printf("Scaling sweep (jobs in {");
  for (size_t I = 0; I < Sec.JobsSwept.size(); ++I)
    std::printf("%u%s", Sec.JobsSwept[I],
                I + 1 < Sec.JobsSwept.size() ? ", " : "");
  std::printf("}%s)\n", Sec.Skipped ? ", truncated" : "");

  for (const std::string &Name : Names) {
    Benchmark B = loadBenchmark(Name);
    double BaseWall = 0;
    std::string BaseHash;
    for (unsigned Jobs : Sec.JobsSwept) {
      ScalingRow Row = runScaling(B, Jobs);
      if (Jobs == 1) {
        BaseWall = Row.WallSec;
        BaseHash = Row.ProgHash;
      }
      if (BaseWall > 0 && Row.WallSec > 0)
        Row.Speedup = BaseWall / Row.WallSec;
      Row.Efficiency = Row.Speedup / static_cast<double>(Row.Jobs);
      std::printf("  %-16s jobs=%u %-4s wall=%.2fs speedup=%.2fx "
                  "eff=%.2f steals=%llu/%llu hash=%s\n",
                  B.Name.c_str(), Jobs, Row.Ok ? "ok" : "FAIL", Row.WallSec,
                  Row.Speedup, Row.Efficiency,
                  static_cast<unsigned long long>(Row.PoolSteals),
                  static_cast<unsigned long long>(Row.PoolTasks),
                  Row.ProgHash.c_str());
      if (Row.Ok && !BaseHash.empty() && Row.ProgHash != BaseHash)
        std::printf("  WARNING: %s program hash diverged at jobs=%u "
                    "(determinism violation)\n",
                    Name.c_str(), Jobs);
      Sec.Rows.push_back(std::move(Row));
    }
    std::fflush(stdout);
  }
  return Sec;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_PR10.json";
  const bool Quick = quickMode();
  if (Quick && !std::getenv("MIGRATOR_BENCH_BUDGET"))
    setenv("MIGRATOR_BENCH_BUDGET", "3", 1);
  checkNprocAgreement();
  obs::setMetricsEnabled(true);

  std::vector<std::string> Names = {"Ambler-8", "coachup", "MathHotSpot"};
  if (const char *Env = std::getenv("MIGRATOR_SWEEP_BENCHMARKS")) {
    Names.clear();
    std::string S = Env, Tok;
    std::istringstream In(S);
    while (std::getline(In, Tok, ','))
      if (!Tok.empty())
        Names.push_back(Tok);
  }

  std::printf("Parallel engine sweep (deterministic, production config) -> %s\n",
              OutPath);
  const std::vector<unsigned> JobsList =
      Quick ? std::vector<unsigned>{1u, 2u} : std::vector<unsigned>{1u, 2u, 4u};
  std::vector<SweepRow> Rows;
  for (const std::string &Name : Names) {
    Benchmark B = loadBenchmark(Name);
    for (unsigned Jobs : JobsList)
      Rows.push_back(runOne(B, Jobs, /*Batch=*/Jobs == 1 ? 1 : 4,
                            /*UseCache=*/true));
    // Cache ablation at jobs=1: hardware-independent work reduction.
    Rows.push_back(runOne(B, /*Jobs=*/1, /*Batch=*/1, /*UseCache=*/false));
  }

  // Scaling sweep: the speedup curve (or its honest, machine-readable
  // absence on hosts without the cores).
  ScalingSection Scaling = runScalingSweep(Names, Quick);

  // Contention pass: the widest parallel configuration again, this time
  // with lock profiling on — which named lock did the workers wait on?
  const unsigned ContJobs = JobsList.back();
  std::printf("Lock contention (jobs=%u, profiled)\n", ContJobs);
  std::vector<ContentionRow> ContRows;
  for (const std::string &Name : Names) {
    Benchmark B = loadBenchmark(Name);
    std::vector<ContentionRow> R = runContention(B, ContJobs);
    ContRows.insert(ContRows.end(), R.begin(), R.end());
  }

  // Join-engine ablation: the same eval-dominated workload with indexes on
  // and off; the tuples_scanned ratio is hardware-independent.
  const unsigned JoinN = Quick ? 100 : 400;
  std::printf("Join engine ablation (3-table chain, %u rows/table)\n", JoinN);
  std::vector<JoinEngineRow> JoinRows;
  JoinRows.push_back(runJoinEngine(/*Indexed=*/true, JoinN, JoinN));
  JoinRows.push_back(runJoinEngine(/*Indexed=*/false, JoinN, JoinN));
  if (JoinRows[0].TuplesScanned > 0)
    std::printf("  tuples_scanned ratio (naive/indexed): %.1fx\n",
                static_cast<double>(JoinRows[1].TuplesScanned) /
                    static_cast<double>(JoinRows[0].TuplesScanned));

  // State-engine ablation: COW on/off x corpus on/off at jobs=1. The
  // synthesized program must be identical in all four configurations.
  std::printf("State engine ablation (jobs=1, bias off, deterministic)\n");
  std::vector<StateEngineRow> StateRows;
  for (const std::string &Name : Names) {
    Benchmark B = loadBenchmark(Name);
    std::string Hash;
    for (bool Cow : {true, false})
      for (bool Corpus : {true, false}) {
        StateRows.push_back(runStateEngine(B, Cow, Corpus));
        const StateEngineRow &Row = StateRows.back();
        if (Hash.empty())
          Hash = Row.ProgHash;
        else if (Row.Ok && Row.ProgHash != Hash)
          std::printf("  WARNING: %s produced a different program under "
                      "cow=%d corpus=%d\n",
                      Name.c_str(), Row.Cow, Row.Corpus);
      }
  }

  // Solver-engine ablation: the persistent assumption-based solver against
  // the scratch-solver-per-encoding oracle. Pipeline rows complete and must
  // agree byte-for-byte on the synthesized program (decisions are in
  // canonical fixed order, so the model sequence is engine-independent);
  // enum rows stress the SAT loop itself under a fixed budget.
  std::printf("Solver engine ablation (incremental vs scratch oracle)\n");
  std::vector<SolverEngineRow> SolverRows;
  for (const std::string &Name : Names) {
    Benchmark B = loadBenchmark(Name);
    for (const char *Mode : {"pipeline", "stress", "enum"}) {
      std::string IncHash;
      uint64_t IncSatUs = 0, IncCalls = 0;
      for (bool Incremental : {true, false}) {
        SolverRows.push_back(runSolverEngine(B, Mode, Incremental));
        const SolverEngineRow &Row = SolverRows.back();
        if (Incremental) {
          IncHash = Row.ProgHash;
          IncSatUs = Row.SatCallUsTotal;
          IncCalls = Row.SatCalls;
        } else {
          if (Row.ProgHash != IncHash)
            std::printf("  WARNING: %s %s synthesized program differs "
                        "between engines (%s vs %s)\n",
                        Name.c_str(), Row.Mode.c_str(), IncHash.c_str(),
                        Row.ProgHash.c_str());
          if (Row.Mode != "pipeline" && Row.SatCallUsTotal > 0 &&
              IncSatUs > 0)
            std::printf("  %-16s %s sat-loop win: %.2fx "
                        "(scratch %llu us / incremental %llu us; "
                        "calls %llu vs %llu)\n",
                        Name.c_str(), Row.Mode.c_str(),
                        static_cast<double>(Row.SatCallUsTotal) /
                            static_cast<double>(IncSatUs),
                        static_cast<unsigned long long>(Row.SatCallUsTotal),
                        static_cast<unsigned long long>(IncSatUs),
                        static_cast<unsigned long long>(Row.SatCalls),
                        static_cast<unsigned long long>(IncCalls));
        }
      }
    }
  }

  std::ostringstream Out;
  Out << "{\n  \"meta\": " << metaJson(Quick)
      << ",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"scaling\": " << Scaling.json() << ",\n  \"contention\": [\n";
  for (size_t I = 0; I < ContRows.size(); ++I)
    Out << "    " << ContRows[I].json()
        << (I + 1 < ContRows.size() ? ",\n" : "\n");
  Out << "  ],\n  \"join_engine\": [\n";
  for (size_t I = 0; I < JoinRows.size(); ++I)
    Out << "    " << JoinRows[I].json()
        << (I + 1 < JoinRows.size() ? ",\n" : "\n");
  Out << "  ],\n  \"state_engine\": [\n";
  for (size_t I = 0; I < StateRows.size(); ++I)
    Out << "    " << StateRows[I].json()
        << (I + 1 < StateRows.size() ? ",\n" : "\n");
  Out << "  ],\n  \"solver\": [\n";
  for (size_t I = 0; I < SolverRows.size(); ++I)
    Out << "    " << SolverRows[I].json()
        << (I + 1 < SolverRows.size() ? ",\n" : "\n");
  Out << "  ],\n  \"results\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I)
    Out << "    " << Rows[I].json() << (I + 1 < Rows.size() ? ",\n" : "\n");
  Out << "  ]\n}\n";

  std::string Doc = Out.str();
  std::string Err;
  if (!obs::validateJson(Doc, &Err)) {
    std::fprintf(stderr, "internal error: emitted invalid JSON: %s\n",
                 Err.c_str());
    return 1;
  }
  std::ofstream F(OutPath);
  if (!F) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath);
    return 1;
  }
  F << Doc;
  std::printf("wrote %s (%zu rows)\n", OutPath, Rows.size());
  return 0;
}
