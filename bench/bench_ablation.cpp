//===- bench/bench_ablation.cpp - Ablations of the design choices -----------===//
//
// Ablation studies for the design choices DESIGN.md calls out (these extend
// the paper's evaluation):
//
//  1. name-similarity soft constraints off — VC enumeration degenerates to
//     one-to-one preference only;
//  2. exact-name preemption off — dropped attributes drift onto surviving
//     columns and enumeration stalls on the larger merge benchmark;
//  3. Steiner slack sweep — candidate-chain depth vs. sketch size and time;
//  4. relevance slicing off — per-candidate testing cost without per-query
//     dependency slicing;
//  ...
//  7. parallel engine — threads × batch sweep and source-cache on/off under
//     the stress configuration (first-alternative bias off, so candidate
//     testing dominates); see docs/PERFORMANCE.md.
//  8. striped source cache at jobs=1 — the measurement behind the
//     SourceCacheMinJobs default: does forcing the (now lock-striped)
//     memo on a sequential run pay for its key hashing and state storage,
//     or does the COW-backed recompute still win single-threaded?
//  9. incremental SAT engine on/off — the persistent assumption-based
//     solver (trail reuse, cross-query clause learning, reduceDB) against
//     the scratch-solver-per-encoding oracle, under a SAT-heavy
//     enumerative configuration; see docs/PERFORMANCE.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "obs/Metrics.h"
#include "sat/Solver.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace migrator;
using namespace migrator::bench;

namespace {

/// Pulls a counter's value out of a run's metrics delta (0 if the counter
/// never fired).
uint64_t counterOf(const SynthResult &R, const char *Name) {
  auto It = R.Metrics.Counters.find(Name);
  return It == R.Metrics.Counters.end() ? 0 : It->second;
}

void runConfig(const char *Label, const Benchmark &B, SynthOptions Opts,
               double Budget) {
  // MIGRATOR_BENCH_BUDGET caps every ablation configuration, so quick runs
  // of the whole bench directory stay time-bounded.
  if (const char *Env = std::getenv("MIGRATOR_BENCH_BUDGET"))
    Budget = std::min(Budget, std::atof(Env));
  Opts.TimeBudgetSec = Budget;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
  std::printf("  %-34s %-8s vcs=%-5zu iters=%-6llu space=%-10.3g synth=%s\n",
              Label, R.succeeded() ? "ok" : "FAIL", R.Stats.NumVcs,
              static_cast<unsigned long long>(R.Stats.Iters),
              R.Stats.SketchSpace,
              fmtTime(R.Stats.SynthTimeSec, R.Stats.TimedOut).c_str());
  // Second line: how the search behaved, from the per-run metrics delta —
  // SAT effort, how often MFI learning actually pruned, and tester load.
  std::printf("  %-34s sat{calls=%llu conf=%llu dec=%llu} mfi{hit=%llu "
              "miss=%llu} seqs=%llu tuples=%llu\n",
              "",
              static_cast<unsigned long long>(counterOf(R, "solver.sat_calls")),
              static_cast<unsigned long long>(
                  counterOf(R, "solver.sat_conflicts")),
              static_cast<unsigned long long>(
                  counterOf(R, "solver.sat_decisions")),
              static_cast<unsigned long long>(
                  counterOf(R, "solver.mfi_prune_hits")),
              static_cast<unsigned long long>(
                  counterOf(R, "solver.mfi_prune_misses")),
              static_cast<unsigned long long>(
                  counterOf(R, "tester.sequences_run")),
              static_cast<unsigned long long>(
                  counterOf(R, "eval.tuples_scanned")));
  std::fflush(stdout);
}

} // namespace

int main() {
  std::printf("Ablation studies (extensions beyond the paper's tables)\n");
  obs::setMetricsEnabled(true); // Per-run metric deltas for every config.

  // 1 & 2: VC-layer ablations on benchmarks that stress the VC search.
  for (const char *Name : {"Ambler-4", "MathHotSpot", "probable-engine"}) {
    Benchmark B = loadBenchmark(Name);
    std::printf("\n[%s] value-correspondence ablations\n", Name);
    SynthOptions Default;
    runConfig("default", B, Default, 120);
    SynthOptions NoSim;
    NoSim.Vc.UseNameSimilarity = false;
    runConfig("no name similarity", B, NoSim, 120);
    SynthOptions NoPreempt;
    NoPreempt.Vc.ExactNamePreemption = false;
    runConfig("no exact-name preemption", B, NoPreempt, 120);
  }

  // 3: Steiner slack sweep on the overview-style split benchmark.
  {
    Benchmark B = loadBenchmark("Oracle-2");
    std::printf("\n[Oracle-2] Steiner slack sweep\n");
    for (unsigned Slack = 0; Slack <= 3; ++Slack) {
      SynthOptions Opts;
      Opts.SketchGen.SteinerSlack = Slack;
      char Label[64];
      std::snprintf(Label, sizeof(Label), "slack=%u", Slack);
      runConfig(Label, B, Opts, 120);
    }
  }

  // 4: relevance slicing on a mid-size benchmark.
  {
    Benchmark B = loadBenchmark("coachup");
    std::printf("\n[coachup] tester relevance slicing\n");
    SynthOptions Default;
    runConfig("slicing on", B, Default, 300);
    SynthOptions NoSlice;
    NoSlice.Solver.Test.UseRelevanceSlicing = false;
    NoSlice.Solver.Verify.UseRelevanceSlicing = false;
    runConfig("slicing off", B, NoSlice, 300);
  }

  // 5: first-alternative bias: effect of the model-ordering heuristic.
  for (const char *Name : {"coachup", "MathHotSpot"}) {
    Benchmark B = loadBenchmark(Name);
    std::printf("\n[%s] first-alternative bias\n", Name);
    SynthOptions On;
    runConfig("bias on (default)", B, On, 300);
    SynthOptions Off;
    Off.Solver.BiasFirstAlternatives = false;
    runConfig("bias off (paper's setting)", B, Off, 300);
  }

  // 6: bounded-testing depth: seed-set size effect on the overview bench.
  {
    Benchmark B = loadBenchmark("Ambler-8");
    std::printf("\n[Ambler-8] bounded-testing seed set\n");
    SynthOptions Two;
    runConfig("int seeds {0,1}", B, Two, 120);
    SynthOptions Three;
    Three.Solver.Test.IntSeeds = {0, 1, 2};
    Three.Solver.Verify.IntSeeds = {0, 1, 2};
    runConfig("int seeds {0,1,2}", B, Three, 120);
  }

  // 7: parallel engine. Bias off forces the solver through many failing
  // candidates, so the batched tester and portfolio — not the (sequential)
  // SAT core — carry the run; deterministic mode keeps every configuration
  // on the same answer.
  for (const char *Name : {"coachup", "MathHotSpot"}) {
    Benchmark B = loadBenchmark(Name);
    std::printf("\n[%s] parallel engine (threads x batch, bias off)\n", Name);
    const struct {
      unsigned Jobs, Batch;
    } Grid[] = {{1, 1}, {2, 4}, {4, 4}};
    for (auto [Jobs, Batch] : Grid) {
      SynthOptions Opts;
      Opts.Solver.BiasFirstAlternatives = false;
      Opts.Jobs = Jobs;
      Opts.Solver.Batch = Batch;
      Opts.Deterministic = true;
      char Label[64];
      std::snprintf(Label, sizeof(Label), "jobs=%u batch=%u", Jobs, Batch);
      runConfig(Label, B, Opts, 300);
    }
    SynthOptions NoCache;
    NoCache.Solver.BiasFirstAlternatives = false;
    NoCache.UseSourceCache = false;
    runConfig("source cache off", B, NoCache, 300);
  }

  // 8: the SourceCacheMinJobs policy measurement. Both configurations run
  // sequentially (jobs=1, bias off); the only difference is whether the
  // striped source-result memo is forced on. PR 8's striping removes
  // cross-worker contention but cannot remove the per-probe key hashing
  // and per-state storage a sequential run pays — if "cache on" loses
  // here, the auto-disable default (SourceCacheMinJobs=2) stands.
  for (const char *Name : {"Ambler-8", "coachup", "MathHotSpot"}) {
    Benchmark B = loadBenchmark(Name);
    std::printf("\n[%s] striped source cache at jobs=1 (bias off)\n", Name);
    SynthOptions CacheOn;
    CacheOn.Solver.BiasFirstAlternatives = false;
    CacheOn.Deterministic = true;
    CacheOn.UseSourceCache = true;
    CacheOn.SourceCacheMinJobs = 1; // Force on despite jobs=1.
    runConfig("striped cache on", B, CacheOn, 300);
    SynthOptions CacheOff;
    CacheOff.Solver.BiasFirstAlternatives = false;
    CacheOff.Deterministic = true;
    CacheOff.UseSourceCache = false;
    runConfig("striped cache off", B, CacheOff, 300);
  }

  // 9: incremental SAT engine. The enumerative mode with bias off draws
  // hundreds of thousands of assignments per encoding — every draw is
  // a SAT call against an ever-growing blocking-clause set, the workload
  // the persistent solver's trail reuse and learned-clause retention are
  // built for. Decisions are in canonical fixed order, so both engines
  // draw the *same* model sequence (and synthesize byte-identical
  // programs when they finish); the time budget merely truncates that
  // sequence, so sat_call_us at the printed call count is the honest
  // per-loop comparison.
  for (const char *Name : {"coachup", "Ambler-8", "MathHotSpot"}) {
    Benchmark B = loadBenchmark(Name);
    std::printf("\n[%s] incremental SAT engine (enum, bias off)\n", Name);
    const bool Saved = sat::satIncrementalEnabled();
    for (bool Incremental : {true, false}) {
      sat::setSatIncrementalEnabled(Incremental);
      SynthOptions Opts;
      Opts.Solver.TheMode = SolverOptions::Mode::Enumerative;
      Opts.Solver.BiasFirstAlternatives = false;
      Opts.Solver.MaxIters = 20000;
      Timer T;
      obs::MetricsSnapshot Before = obs::registry().snapshot();
      if (const char *Env = std::getenv("MIGRATOR_BENCH_BUDGET"))
        Opts.TimeBudgetSec = std::min(300.0, std::atof(Env));
      else
        Opts.TimeBudgetSec = 300;
      SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
      double Wall = T.elapsedSeconds();
      uint64_t Calls = counterOf(R, "solver.sat_calls");
      uint64_t Conflicts = counterOf(R, "solver.sat_conflicts");
      auto HistIt = R.Metrics.Histograms.find("solver.sat_call_us");
      uint64_t SatUs =
          HistIt == R.Metrics.Histograms.end() ? 0 : HistIt->second.Sum;
      (void)Before;
      std::printf("  %-34s wall=%-8.3f sat_call_us=%-10llu calls=%-8llu "
                  "conf/query=%.3f deleted=%llu reduce_dbs=%llu\n",
                  Incremental ? "incremental (default)" : "scratch oracle",
                  Wall, static_cast<unsigned long long>(SatUs),
                  static_cast<unsigned long long>(Calls),
                  Calls ? static_cast<double>(Conflicts) / Calls : 0.0,
                  static_cast<unsigned long long>(
                      counterOf(R, "sat.deleted_clauses")),
                  static_cast<unsigned long long>(
                      counterOf(R, "sat.reduce_dbs")));
      std::fflush(stdout);
    }
    sat::setSatIncrementalEnabled(Saved);
  }
  return 0;
}
