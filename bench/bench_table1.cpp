//===- bench/bench_table1.cpp - Table 1: main experimental results ----------===//
//
// Regenerates Table 1 of the paper: for each of the 20 benchmarks, run the
// full Migrator pipeline and report the number of value correspondences
// tried, candidate programs explored (Iters), synthesis time (excluding
// verification), and total time.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace migrator;
using namespace migrator::bench;

int main() {
  std::printf("Table 1: main experimental results "
              "(cf. Wang et al., PLDI 2019, Table 1)\n\n");
  std::printf("%-16s %-28s %5s | %6s %5s | %6s %5s | %5s %6s %9s %9s %s\n",
              "Benchmark", "Description", "Funcs", "SrcTab", "SrcAt",
              "TgtTab", "TgtAt", "VCs", "Iters", "Synth(s)", "Total(s)",
              "Status");
  std::printf("----------------------------------------------------------"
              "----------------------------------------------------------\n");

  size_t Solved = 0;
  double TotalSynth = 0, TotalTotal = 0;
  size_t N = 0;
  for (const std::string &Name : allBenchmarkNames()) {
    Benchmark B = loadBenchmark(Name);
    SynthOptions Opts;
    Opts.TimeBudgetSec = budgetFor(B);

    SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
    const char *Status =
        R.succeeded() ? "ok" : (R.Stats.TimedOut ? "timeout" : "no-solution");
    if (R.succeeded()) {
      ++Solved;
      TotalSynth += R.Stats.SynthTimeSec;
      TotalTotal += R.Stats.TotalTimeSec;
      ++N;
    }
    std::printf("%-16s %-28s %5zu | %6zu %5zu | %6zu %5zu | %5zu %6llu %9.1f "
                "%9.1f %s\n",
                B.Name.c_str(), B.Description.c_str(), B.numFuncs(),
                B.Source.getNumTables(), B.Source.getNumAttrs(),
                B.Target.getNumTables(), B.Target.getNumAttrs(),
                R.Stats.NumVcs, static_cast<unsigned long long>(R.Stats.Iters),
                R.Stats.SynthTimeSec, R.Stats.TotalTimeSec, Status);
    std::fflush(stdout);
  }
  std::printf("----------------------------------------------------------"
              "----------------------------------------------------------\n");
  if (N > 0)
    std::printf("Solved %zu/20; average synth time %.1fs, average total time "
                "%.1fs (paper: 20/20, 69.4s, 80.5s)\n",
                Solved, TotalSynth / N, TotalTotal / N);
  return Solved == 20 ? 0 : 1;
}
