//===- bench/bench_micro.cpp - Micro-benchmarks of the subsystems -----------===//
//
// google-benchmark timings for the individual subsystems: string similarity,
// SAT solving, query evaluation, VC enumeration, sketch generation, bounded
// testing, and the end-to-end overview synthesis.
//
//===----------------------------------------------------------------------===//

#include "ast/Analysis.h"
#include "benchsuite/Benchmark.h"
#include "obs/LockProfile.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "parse/Parser.h"
#include "sat/Solver.h"
#include "sketch/SketchGen.h"
#include "support/StringExtras.h"
#include "synth/Synthesizer.h"
#include "vc/VcEnumerator.h"

#include <benchmark/benchmark.h>

using namespace migrator;

namespace {

const char *overviewText() {
  return R"(
schema CourseDB {
  table Class(ClassId: int, InstId: int, TaId: int)
  table Instructor(InstId: int, IName: string, IPic: binary)
  table TA(TaId: int, TName: string, TPic: binary)
}
schema CourseDBNew {
  table Class(ClassId: int, InstId: int, TaId: int)
  table Instructor(InstId: int, IName: string, PicId: int)
  table TA(TaId: int, TName: string, PicId: int)
  table Picture(PicId: int, Pic: binary)
}
program CourseApp on CourseDB {
  update addInstructor(id: int, name: string, pic: binary) {
    insert into Instructor values (InstId: id, IName: name, IPic: pic);
  }
  update deleteInstructor(id: int) {
    delete [Instructor] from Instructor where InstId = id;
  }
  query getInstructorInfo(id: int) {
    select IName, IPic from Instructor where InstId = id;
  }
  update addTA(id: int, name: string, pic: binary) {
    insert into TA values (TaId: id, TName: name, TPic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from TA where TaId = id;
  }
  query getTAInfo(id: int) {
    select TName, TPic from TA where TaId = id;
  }
}
)";
}

ParseOutput &overview() {
  static ParseOutput Out =
      std::get<ParseOutput>(parseUnit(overviewText()));
  return Out;
}

void BM_Levenshtein(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(levenshtein("InstructorName", "InstructorId"));
}
BENCHMARK(BM_Levenshtein);

void BM_ParseOverview(benchmark::State &State) {
  for (auto _ : State) {
    auto R = parseUnit(overviewText());
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ParseOverview);

void BM_SatExactlyOneEnumeration(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    sat::Solver S;
    std::vector<sat::Var> Vars;
    for (int I = 0; I < N; ++I)
      Vars.push_back(S.newVar());
    S.addExactlyOne(Vars);
    int Models = 0;
    while (S.solve() == sat::Solver::Result::Sat) {
      ++Models;
      std::vector<sat::Lit> Block;
      for (sat::Var V : Vars)
        Block.push_back(S.modelValue(V) ? sat::negLit(V) : sat::posLit(V));
      if (!S.addClause(Block))
        break;
    }
    benchmark::DoNotOptimize(Models);
  }
}
BENCHMARK(BM_SatExactlyOneEnumeration)->Arg(8)->Arg(32)->Arg(64);

void BM_JoinEvaluation(benchmark::State &State) {
  // Natural three-table join over a populated course database.
  ParseOutput &Out = overview();
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  Database DB(Tgt);
  for (int I = 0; I < static_cast<int>(State.range(0)); ++I) {
    DB.getTable("Picture").insertRow(
        {Value::makeInt(I), Value::makeBinary("p")});
    DB.getTable("Instructor").insertRow(
        {Value::makeInt(I), Value::makeString("n"), Value::makeInt(I)});
    DB.getTable("TA").insertRow(
        {Value::makeInt(I), Value::makeString("t"), Value::makeInt(I)});
  }
  Evaluator Eval(Tgt);
  QueryPtr Q = makeSelect({AttrRef::unqualified("IName")},
                          JoinChain::natural({"Picture", "TA", "Instructor"}),
                          nullptr);
  for (auto _ : State) {
    auto R = Eval.evalQuery(*Q, {}, DB);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_JoinEvaluation)->Arg(4)->Arg(16)->Arg(64);

void BM_VcFirstAssignment(benchmark::State &State) {
  ParseOutput &Out = overview();
  const Schema &Src = *Out.findSchema("CourseDB");
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  std::set<QualifiedAttr> Queried = collectQueriedAttrs(P, Src);
  for (auto _ : State) {
    VcEnumerator E(Src, Tgt, Queried);
    auto VC = E.next();
    benchmark::DoNotOptimize(VC);
  }
}
BENCHMARK(BM_VcFirstAssignment);

void BM_SketchGeneration(benchmark::State &State) {
  ParseOutput &Out = overview();
  const Schema &Src = *Out.findSchema("CourseDB");
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  VcEnumerator E(Src, Tgt, collectQueriedAttrs(P, Src));
  ValueCorrespondence Phi = *E.next();
  for (auto _ : State) {
    auto Sk = generateSketch(P, Src, Tgt, Phi);
    benchmark::DoNotOptimize(Sk);
  }
}
BENCHMARK(BM_SketchGeneration);

void BM_BoundedTestCandidate(benchmark::State &State) {
  // One full bounded-equivalence test of a correct candidate.
  ParseOutput &Out = overview();
  const Schema &Src = *Out.findSchema("CourseDB");
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  SynthResult R = synthesize(Src, P, Tgt);
  EquivalenceTester T(Src, P, Tgt);
  for (auto _ : State) {
    TestOutcome O = T.test(*R.Prog);
    benchmark::DoNotOptimize(O);
  }
}
BENCHMARK(BM_BoundedTestCandidate);

void BM_EndToEndOverview(benchmark::State &State) {
  ParseOutput &Out = overview();
  const Schema &Src = *Out.findSchema("CourseDB");
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  for (auto _ : State) {
    SynthResult R = synthesize(Src, P, Tgt);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_EndToEndOverview);

void BM_LoadRealWorldBenchmark(benchmark::State &State) {
  for (auto _ : State) {
    Benchmark B = loadBenchmark("visible-closet");
    benchmark::DoNotOptimize(B);
  }
}
BENCHMARK(BM_LoadRealWorldBenchmark);

//===----------------------------------------------------------------------===//
// Observability overhead
//===----------------------------------------------------------------------===//
//
// The contract is near-zero cost with collection disabled: compare
// BM_EndToEndOverview (no obs calls beyond the inert instrumentation) with
// the Disabled variants below — they must agree within noise (~2%). The
// Enabled variants quantify the cost of actually collecting.

void BM_ObsCounterDisabled(benchmark::State &State) {
  obs::setMetricsEnabled(false);
  for (auto _ : State) {
    // 16 sites per iteration so the per-site cost rises above loop overhead.
    for (int I = 0; I < 16; ++I)
      MIGRATOR_COUNTER_ADD("bench.obs.counter", 1);
  }
  State.SetItemsProcessed(State.iterations() * 16);
}
BENCHMARK(BM_ObsCounterDisabled);

void BM_ObsCounterEnabled(benchmark::State &State) {
  obs::setMetricsEnabled(true);
  for (auto _ : State) {
    for (int I = 0; I < 16; ++I)
      MIGRATOR_COUNTER_ADD("bench.obs.counter", 1);
  }
  obs::setMetricsEnabled(false);
  State.SetItemsProcessed(State.iterations() * 16);
}
BENCHMARK(BM_ObsCounterEnabled);

void BM_ObsTraceScopeDisabled(benchmark::State &State) {
  for (auto _ : State) {
    MIGRATOR_TRACE_SCOPE("bench.obs.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsTraceScopeDisabled);

void BM_ObsHistogramEnabled(benchmark::State &State) {
  obs::setMetricsEnabled(true);
  uint64_t V = 0;
  for (auto _ : State) {
    MIGRATOR_HISTOGRAM_RECORD("bench.obs.hist", V++);
  }
  obs::setMetricsEnabled(false);
}
BENCHMARK(BM_ObsHistogramEnabled);

void BM_PlainMutexLockUnlock(benchmark::State &State) {
  // The baseline the profiled wrapper is judged against.
  std::mutex M;
  for (auto _ : State) {
    std::lock_guard<std::mutex> Lock(M);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_PlainMutexLockUnlock);

void BM_ProfiledMutexDisabled(benchmark::State &State) {
  // The acceptance bar: within ~1ns/op of BM_PlainMutexLockUnlock — one
  // relaxed load + branch on lock, one plain load + branch on unlock.
  static obs::LockSite Site("bench.lock.disabled");
  obs::setLockProfilingEnabled(false);
  obs::ProfiledMutex M(Site);
  for (auto _ : State) {
    std::lock_guard<obs::ProfiledMutex> Lock(M);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ProfiledMutexDisabled);

void BM_ProfiledMutexEnabled(benchmark::State &State) {
  // Cost of actually collecting: try_lock + two clock reads + fetch_adds.
  static obs::LockSite Site("bench.lock.enabled");
  obs::setLockProfilingEnabled(true);
  obs::ProfiledMutex M(Site);
  for (auto _ : State) {
    std::lock_guard<obs::ProfiledMutex> Lock(M);
    benchmark::ClobberMemory();
  }
  obs::setLockProfilingEnabled(false);
  Site.reset();
}
BENCHMARK(BM_ProfiledMutexEnabled);

void BM_EndToEndOverviewInstrumented(benchmark::State &State) {
  // End-to-end synthesis with metric collection ON (tracing still off):
  // the realistic "always-on stats" configuration.
  ParseOutput &Out = overview();
  const Schema &Src = *Out.findSchema("CourseDB");
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  obs::setMetricsEnabled(true);
  for (auto _ : State) {
    SynthResult R = synthesize(Src, P, Tgt);
    benchmark::DoNotOptimize(R);
  }
  obs::setMetricsEnabled(false);
}
BENCHMARK(BM_EndToEndOverviewInstrumented);

} // namespace

BENCHMARK_MAIN();
