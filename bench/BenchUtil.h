//===- bench/BenchUtil.h - Shared bench-harness helpers -----------*- C++ -*-===//
//
// Part of the Migrator project benchmark harness.
//
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_BENCH_BENCHUTIL_H
#define MIGRATOR_BENCH_BENCHUTIL_H

#include "benchsuite/Benchmark.h"
#include "synth/Synthesizer.h"

#include <cstdio>
#include <string>

namespace migrator {
namespace bench {

/// Per-benchmark wall-clock budget in seconds. Textbook benchmarks are
/// quick; real-world-scale ones get a larger budget. Override with the
/// MIGRATOR_BENCH_BUDGET environment variable.
inline double budgetFor(const Benchmark &B) {
  if (const char *Env = std::getenv("MIGRATOR_BENCH_BUDGET"))
    return std::atof(Env);
  return B.Category == "textbook" ? 120.0 : 900.0;
}

/// Baseline budget (Tables 2 and 3): capped lower — the point of those
/// tables is that the baselines blow through any reasonable budget.
inline double baselineBudgetFor(const Benchmark &B) {
  if (const char *Env = std::getenv("MIGRATOR_BASELINE_BUDGET"))
    return std::atof(Env);
  return B.Category == "textbook" ? 60.0 : 120.0;
}

/// Formats a duration like the paper's tables; ">N" marks budget exhaustion.
inline std::string fmtTime(double Sec, bool TimedOut) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), TimedOut ? ">%.1f" : "%.1f", Sec);
  return Buf;
}

} // namespace bench
} // namespace migrator

#endif // MIGRATOR_BENCH_BENCHUTIL_H
